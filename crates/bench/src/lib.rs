//! # hidp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! HiDP paper's evaluation (§IV). Each `fig*`/`table*` function returns an
//! [`ExperimentTable`] with the same rows/series the paper reports; the
//! `exp_*` binaries print them and the Criterion benches under `benches/`
//! track the cost of the underlying machinery.
//!
//! The experiment configuration mirrors the paper's setup: the five-device
//! cluster of Table II, requests arriving at the Jetson TX2 (the device used
//! for the Fig. 1 motivation study), and the four DNN workloads at their
//! published input resolutions.

#![warn(missing_docs)]

pub mod alloc_count;

use hidp_baselines::paper_strategies;
use hidp_core::{
    chain_segments, workload_summary, AdaptiveConfig, AdmissionPolicy, DseAgent, DsePolicy,
    Evaluation, FailureMode, FleetRequest, FleetScenario, FleetScratch, FleetSummary,
    GlobalPartitioner, HidpStrategy, LatencySummary, LocalPartitioner, ParallelSweep, PlanCache,
    PlanKey, RecoveryPolicy, RobustnessStats, RoutingPolicy, Scenario, ServingEvaluation,
    ServingScenario, ServingScratch, ServingSummary, ServingSweepJob, SimScratch, SlaClass,
    StrategyBandit, SweepJob, SystemModel, TraceDetail,
};
use hidp_dnn::exec::{execute, execute_data_partition_batch, execute_model_partition, WeightStore};
use hidp_dnn::partition::partition_into_blocks;
use hidp_dnn::zoo::{self, WorkloadModel};
use hidp_platform::{presets, Cluster, ClusterTimeline, DriftModel, NodeIndex, ProcessorAddr};
use hidp_sim::stats::performance_timeline;
use hidp_sim::{simulate_stream, simulate_stream_in, simulate_stream_reference, ExecutionPlan};
use hidp_tensor::Tensor;
use hidp_workloads::{
    bursty_stream, dynamic_scenario, mixes, poisson_stream_classed, standard_fault_suite,
    DriftPlanConfig, FaultPlan, InferenceRequest,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// The node at which inference requests arrive in all experiments (the
/// Jetson TX2, index 1 of [`presets::paper_cluster`]).
pub const LEADER: NodeIndex = NodeIndex(1);

/// A simple result table: named rows × named columns of floating point
/// values, with a unit label. Printable as GitHub-flavoured markdown and
/// serialisable to JSON for EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTable {
    /// Table title (e.g. `"Fig. 5(a): inference latency"`).
    pub title: String,
    /// Unit of the values (e.g. `"ms"`).
    pub unit: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows: `(label, values)`, one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, unit: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            unit: unit.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row length must match column count"
        );
        self.rows.push((label.into(), values));
    }

    /// Returns the value at `(row_label, column_label)`, if present.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .map(|(_, values)| values[col])
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} [{}]\n\n", self.title, self.unit));
        out.push_str(&format!(
            "| {} | {} |\n",
            "workload",
            self.columns.join(" | ")
        ));
        out.push_str(&format!("|---|{}\n", "---|".repeat(self.columns.len())));
        for (label, values) in &self.rows {
            let cells: Vec<String> = values.iter().map(|v| format_value(*v)).collect();
            out.push_str(&format!("| {} | {} |\n", label, cells.join(" | ")));
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// The strategy names in the order the paper's figures list them.
pub fn strategy_names() -> Vec<String> {
    paper_strategies()
        .iter()
        .map(|s| s.name().to_string())
        .collect()
}

/// The thread-pooled runner every experiment grid fans out on: one worker
/// per available core. Results are deterministic per job index, so every
/// table below is byte-identical to its old serial implementation.
fn sweep() -> ParallelSweep {
    ParallelSweep::with_available_parallelism()
}

/// Runs a grid of scenario jobs through [`ParallelSweep`] against one shared
/// sharded [`PlanCache`] and unwraps the evaluations (experiment grids are
/// all known-feasible).
fn sweep_evaluations(jobs: &[SweepJob<'_>]) -> Vec<Evaluation> {
    let cache = PlanCache::new();
    sweep()
        .run_scenarios(jobs, &cache)
        .into_iter()
        .map(|r| r.expect("experiment evaluation succeeds"))
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 1: partitioning configurations P1–P9 on the Jetson TX2
// ---------------------------------------------------------------------------

/// One of the Fig. 1 partitioning configurations: a number of data-wise
/// partitions and a CPU/GPU workload split on a single node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitioningConfig {
    /// Configuration name (`"P1"` … `"P9"`).
    pub name: &'static str,
    /// Number of data-wise partitions (1 = no partitioning).
    pub partitions: usize,
    /// Fraction of the workload placed on the GPU.
    pub gpu_share: f64,
}

/// The nine configurations of Fig. 1. P1 is the framework default (GPU only,
/// no data partitioning); the others combine 2 or 4 data partitions with
/// 90/10, 80/20 and 50/50 GPU/CPU splits.
pub const FIG1_CONFIGS: [PartitioningConfig; 9] = [
    PartitioningConfig {
        name: "P1",
        partitions: 1,
        gpu_share: 1.0,
    },
    PartitioningConfig {
        name: "P2",
        partitions: 2,
        gpu_share: 1.0,
    },
    PartitioningConfig {
        name: "P3",
        partitions: 2,
        gpu_share: 0.9,
    },
    PartitioningConfig {
        name: "P4",
        partitions: 2,
        gpu_share: 0.8,
    },
    PartitioningConfig {
        name: "P5",
        partitions: 2,
        gpu_share: 0.5,
    },
    PartitioningConfig {
        name: "P6",
        partitions: 4,
        gpu_share: 0.9,
    },
    PartitioningConfig {
        name: "P7",
        partitions: 4,
        gpu_share: 0.8,
    },
    PartitioningConfig {
        name: "P8",
        partitions: 4,
        gpu_share: 0.65,
    },
    PartitioningConfig {
        name: "P9",
        partitions: 4,
        gpu_share: 0.5,
    },
];

/// Builds the single-node execution plan for one Fig. 1 configuration: the
/// GPU processes `gpu_share` of the flops, the CPU clusters share the rest
/// proportionally to their rates, and every additional data partition adds
/// one halo-synchronisation round.
pub fn fig1_plan(
    model: WorkloadModel,
    config: PartitioningConfig,
    cluster: &Cluster,
) -> ExecutionPlan {
    let graph = model.graph(1);
    let node = NodeIndex(0);
    let device = &cluster.nodes()[node.0];
    let system = SystemModel::new(&graph, node);
    let workload = workload_summary(&graph);
    let gpu = device.gpu_index().expect("TX2 has a GPU");
    let mut plan = ExecutionPlan::new();

    let sync_rounds = config.partitions.saturating_sub(1) as u64;
    let sync_flops = sync_rounds * workload.sync_bytes / 16;

    let gpu_flops = (workload.flops as f64 * config.gpu_share) as u64 + sync_flops;
    let mut tasks = vec![plan.add_compute(
        format!("{}-gpu", config.name),
        ProcessorAddr {
            node,
            processor: gpu,
        },
        gpu_flops,
        system.gpu_affinity,
        &[],
    )];

    let cpu_share = 1.0 - config.gpu_share;
    if cpu_share > 0.0 && config.partitions > 1 {
        // With 2 partitions only the faster CPU cluster joins; with 4 both do.
        let mut cpus = device.cpu_indices();
        cpus.sort_by(|a, b| {
            device.processors[b.0]
                .computation_rate(system.gpu_affinity)
                .partial_cmp(&device.processors[a.0].computation_rate(system.gpu_affinity))
                .expect("finite rates")
        });
        let active_cpus = if config.partitions >= 4 {
            cpus.len()
        } else {
            1.min(cpus.len())
        };
        let selected = &cpus[..active_cpus];
        let total_rate: f64 = selected
            .iter()
            .map(|i| device.processors[i.0].computation_rate(system.gpu_affinity))
            .sum();
        for idx in selected {
            let rate = device.processors[idx.0].computation_rate(system.gpu_affinity);
            let flops = (workload.flops as f64 * cpu_share * rate / total_rate) as u64 + sync_flops;
            tasks.push(plan.add_compute(
                format!("{}-{}", config.name, device.processors[idx.0].name),
                ProcessorAddr {
                    node,
                    processor: *idx,
                },
                flops,
                system.gpu_affinity,
                &[],
            ));
        }
    }
    // Merge the partition results on the first CPU cluster.
    plan.add_compute(
        format!("{}-merge", config.name),
        ProcessorAddr {
            node,
            processor: device.cpu_indices()[0],
        },
        (workload.output_bytes / 4) * 2 * config.partitions as u64,
        0.5,
        &tasks,
    );
    plan
}

/// Fig. 1: normalized inference latency of the four DNN models under the
/// partitioning configurations P1–P9 on a single Jetson TX2 (latencies are
/// normalised to P1, the framework default).
pub fn fig1_partitioning_configs() -> ExperimentTable {
    let cluster = presets::tx2_only();
    let columns: Vec<String> = FIG1_CONFIGS.iter().map(|c| c.name.to_string()).collect();
    let mut table = ExperimentTable::new(
        "Fig. 1: normalized latency of partitioning configurations on Jetson TX2",
        "x (P1 = 1.0)",
        columns,
    );
    // Hand-built plans, so this grid goes through the generic runner (no
    // planner, nothing to cache) — one job per (model, config) cell.
    let jobs: Vec<(WorkloadModel, PartitioningConfig)> = WorkloadModel::ALL
        .iter()
        .flat_map(|&model| FIG1_CONFIGS.iter().map(move |&config| (model, config)))
        .collect();
    let makespans = sweep().run(&jobs, |_, &(model, config)| {
        let plan = fig1_plan(model, config, &cluster);
        // Only the makespan is read, so the per-task trace is skipped.
        Scenario::run_plans_detailed(
            config.name,
            model.name(),
            &[(0.0, plan)],
            &cluster,
            TraceDetail::Summary,
        )
        .expect("fig1 plans are valid")
        .makespan
    });
    for (row, model) in WorkloadModel::ALL.iter().enumerate() {
        let latencies = &makespans[row * FIG1_CONFIGS.len()..(row + 1) * FIG1_CONFIGS.len()];
        let p1 = latencies[0];
        table.push_row(model.name(), latencies.iter().map(|l| l / p1).collect());
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 5: per-model latency and energy for HiDP vs the baselines
// ---------------------------------------------------------------------------

/// Fig. 5(a): inference latency (ms) of each DNN workload under HiDP,
/// DisNet, OmniBoost and MoDNN on the five-device cluster.
pub fn fig5_latency() -> ExperimentTable {
    fig5_metric("Fig. 5(a): inference latency", "ms", |evaluation| {
        evaluation.latency() * 1e3
    })
}

/// Fig. 5(b): energy per inference (J) of each DNN workload under HiDP,
/// DisNet, OmniBoost and MoDNN.
pub fn fig5_energy() -> ExperimentTable {
    fig5_metric("Fig. 5(b): energy per inference", "J", |evaluation| {
        evaluation.total_energy
    })
}

fn fig5_metric(
    title: &str,
    unit: &str,
    metric: impl Fn(&hidp_core::Evaluation) -> f64,
) -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let strategies = paper_strategies();
    // Latency/energy only — the trace is never read, so Summary detail
    // keeps the sweep allocation-light (metrics are bit-identical).
    let scenarios: Vec<Scenario> = WorkloadModel::ALL
        .iter()
        .map(|m| Scenario::single(m.graph(1)).with_trace_detail(TraceDetail::Summary))
        .collect();
    let (cluster, strategies) = (&cluster, &strategies);
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .flat_map(|scenario| {
            strategies.iter().map(move |s| SweepJob {
                scenario,
                strategy: s.as_ref(),
                cluster,
                leader: LEADER,
            })
        })
        .collect();
    let evaluations = sweep_evaluations(&jobs);
    let mut table = ExperimentTable::new(title, unit, strategy_names());
    for (row, model) in WorkloadModel::ALL.iter().enumerate() {
        let values: Vec<f64> = evaluations[row * strategies.len()..(row + 1) * strategies.len()]
            .iter()
            .map(&metric)
            .collect();
        table.push_row(model.name(), values);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 6: cluster performance over time under the dynamic workload
// ---------------------------------------------------------------------------

/// Fig. 6: delivered cluster performance (GFLOP/s) in 0.5 s bins while the
/// dynamic workload (one model arriving every 0.5 s) executes, one row per
/// strategy. The final column reports the total completion time in seconds.
pub fn fig6_dynamic_performance() -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let strategies = paper_strategies();
    let scenario = InferenceRequest::to_scenario(&dynamic_scenario()).with_label("dynamic");
    let bin = 0.5f64;

    // First pass: find the longest makespan so all rows share columns (one
    // parallel job per strategy).
    let jobs: Vec<SweepJob<'_>> = strategies
        .iter()
        .map(|s| SweepJob {
            scenario: &scenario,
            strategy: s.as_ref(),
            cluster: &cluster,
            leader: LEADER,
        })
        .collect();
    let evals = sweep_evaluations(&jobs);
    let max_makespan = evals.iter().map(|e| e.makespan).fold(0.0, f64::max);
    let bins = (max_makespan / bin).ceil() as usize;
    let mut columns: Vec<String> = (0..bins)
        .map(|i| format!("t={:.1}s", i as f64 * bin))
        .collect();
    columns.push("completion_s".to_string());

    let mut table = ExperimentTable::new(
        "Fig. 6: cluster performance under the dynamic workload",
        "GFLOP/s",
        columns,
    );
    for (strategy, eval) in strategies.iter().zip(evals.iter()) {
        let timeline = performance_timeline(&eval.report, bin);
        let mut values: Vec<f64> = (0..bins)
            .map(|i| timeline.get(i).map(|b| b.gflops_per_second).unwrap_or(0.0))
            .collect();
        values.push(eval.makespan);
        table.push_row(strategy.name(), values);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 7: throughput over the eight workload mixes
// ---------------------------------------------------------------------------

/// Fig. 7: throughput (inferences per 100 s) of each strategy over the eight
/// workload mixes.
pub fn fig7_mix_throughput() -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let strategies = paper_strategies();
    let mut table = ExperimentTable::new(
        "Fig. 7: throughput over workload mixes",
        "inferences / 100 s",
        strategy_names(),
    );
    // Sixteen requests arriving every 0.15 s keep the cluster saturated
    // (as the paper's continuous stream does), so throughput reflects the
    // service rate rather than the arrival rate; it extrapolates to a
    // 100 s window. The 8 × 4 mix/strategy grid fans out as one sweep.
    let the_mixes = mixes::all_mixes();
    // Throughput reads request completions only — Summary detail.
    let scenarios: Vec<Scenario> = the_mixes
        .iter()
        .map(|mix| {
            mix.scenario(0.15, 16)
                .with_trace_detail(TraceDetail::Summary)
        })
        .collect();
    let (cluster_ref, strategies_ref) = (&cluster, &strategies);
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .flat_map(|scenario| {
            strategies_ref.iter().map(move |s| SweepJob {
                scenario,
                strategy: s.as_ref(),
                cluster: cluster_ref,
                leader: LEADER,
            })
        })
        .collect();
    let evaluations = sweep_evaluations(&jobs);
    for (row, mix) in the_mixes.iter().enumerate() {
        let values: Vec<f64> = evaluations[row * strategies.len()..(row + 1) * strategies.len()]
            .iter()
            .map(|e| e.throughput(100.0))
            .collect();
        table.push_row(mix.name(), values);
    }
    table
}

// ---------------------------------------------------------------------------
// Fig. 8: latency with a varying number of worker nodes
// ---------------------------------------------------------------------------

/// Fig. 8: average inference latency (ms, mean over the four workloads) of
/// each strategy when the cluster is restricted to 2–5 nodes.
pub fn fig8_node_scaling() -> ExperimentTable {
    let full = presets::paper_cluster();
    let strategies = paper_strategies();
    let mut table = ExperimentTable::new(
        "Fig. 8: average latency vs number of edge nodes",
        "ms",
        strategy_names(),
    );
    // One job per (cluster subset, strategy, model) — the cluster
    // fingerprint differs per subset, so the shared cache keeps every
    // cell's plans apart.
    let clusters: Vec<Cluster> = (2..=full.len())
        .map(|nodes| full.take(nodes).expect("subset sizes are valid"))
        .collect();
    // Latency only — Summary detail.
    let scenarios: Vec<Scenario> = WorkloadModel::ALL
        .iter()
        .map(|m| Scenario::single(m.graph(1)).with_trace_detail(TraceDetail::Summary))
        .collect();
    let (strategies_ref, scenarios_ref) = (&strategies, &scenarios);
    let jobs: Vec<SweepJob<'_>> = clusters
        .iter()
        .flat_map(|cluster| {
            strategies_ref.iter().flat_map(move |s| {
                scenarios_ref.iter().map(move |scenario| SweepJob {
                    scenario,
                    strategy: s.as_ref(),
                    cluster,
                    leader: LEADER,
                })
            })
        })
        .collect();
    let evaluations = sweep_evaluations(&jobs);
    let mut slots = evaluations.chunks(WorkloadModel::ALL.len());
    for cluster in &clusters {
        let values: Vec<f64> = strategies
            .iter()
            .map(|_| {
                let per_model = slots.next().expect("one chunk per (cluster, strategy)");
                per_model.iter().map(|e| e.latency()).sum::<f64>() / WorkloadModel::ALL.len() as f64
                    * 1e3
            })
            .collect();
        table.push_row(format!("{} nodes", cluster.len()), values);
    }
    table
}

// ---------------------------------------------------------------------------
// Stream scaling: the event-driven engine and the plan cache at 10×–100× the
// Fig. 6/7 stream lengths
// ---------------------------------------------------------------------------

/// The model cycle used by the stream-scaling and bench workloads: the
/// three-model Mix-5 of Fig. 7.
pub const SCALING_MODELS: [WorkloadModel; 3] = [
    WorkloadModel::EfficientNetB0,
    WorkloadModel::InceptionV3,
    WorkloadModel::ResNet152,
];

/// Builds the `(arrival, plan)` stream the scaling experiments simulate:
/// `count` requests cycling through [`SCALING_MODELS`] every
/// `interval_seconds`, planned by HiDP through a [`PlanCache`] (three
/// planner invocations regardless of `count`). The plans are **shared** —
/// the whole stream holds three `Arc<ExecutionPlan>`s, repeated, exactly as
/// the zero-copy `Scenario` pipeline hands them to the simulator.
pub fn scaling_stream(count: usize, interval_seconds: f64) -> Vec<(f64, Arc<ExecutionPlan>)> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let cache = PlanCache::new();
    let requests = hidp_workloads::repeating_stream(&SCALING_MODELS, interval_seconds, count);
    InferenceRequest::to_stream(&requests)
        .into_iter()
        .map(|(arrival, graph)| {
            let plan = cache
                .plan(&strategy, &graph, &cluster, LEADER)
                .expect("planning succeeds");
            (arrival, plan)
        })
        .collect()
}

/// One measured point of the stream-scaling experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamScalingPoint {
    /// Stream length in requests.
    pub requests: usize,
    /// Total task count across all plans.
    pub tasks: usize,
    /// Wall-clock of the event-driven engine over the whole stream, ms.
    pub event_sim_ms: f64,
    /// Wall-clock of the O(n²) list-scheduling baseline, ms (`None` when the
    /// point was too large to run the baseline).
    pub list_sim_ms: Option<f64>,
    /// Baseline time over event-engine time.
    pub speedup: Option<f64>,
    /// Per-request planning cost through a warm [`PlanCache`], µs.
    pub cached_plan_us_per_request: f64,
    /// Per-request plan-and-simulate cost (warm cache + event engine), µs.
    pub plan_and_simulate_us_per_request: f64,
}

fn time_best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Measures the stream-scaling experiment: for each stream length in
/// `sizes`, the event-driven engine's wall-clock, the list-scheduling
/// baseline's wall-clock, and the per-request cost of cached planning.
///
/// The quadratic reference simulator is metered by a wall-clock budget
/// rather than a hard request cap: each point runs the reference (best of
/// up to two attempts, matching the event engine's attempt count) as long
/// as `reference_budget_ms` of cumulative reference time remains, so large
/// points get a measured `list_sim_ms` instead of a silent `null` whenever
/// the budget allows — and when one is skipped, the recorded budget says
/// why.
pub fn stream_scaling_points(sizes: &[usize], reference_budget_ms: f64) -> Vec<StreamScalingPoint> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let mut points = Vec::with_capacity(sizes.len());
    let mut reference_budget_left_ms = reference_budget_ms;
    for &count in sizes {
        let planned = scaling_stream(count, 0.05);
        let tasks: usize = planned.iter().map(|(_, p)| p.len()).sum();

        // Same run count on both sides so the best-of selection does not
        // bias the speedup toward the engine that got more attempts.
        let event_sim_ms = time_best_of(2, || {
            simulate_stream(&planned, &cluster).expect("stream simulates")
        }) * 1e3;
        let mut list_sim_ms = None;
        for _ in 0..2 {
            if reference_budget_left_ms <= 0.0 {
                break;
            }
            let start = Instant::now();
            std::hint::black_box(
                simulate_stream_reference(&planned, &cluster).expect("stream simulates"),
            );
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            reference_budget_left_ms -= elapsed_ms;
            list_sim_ms = Some(list_sim_ms.map_or(elapsed_ms, |best: f64| best.min(elapsed_ms)));
        }

        // Warm-cache planning cost: what each additional request pays for
        // its plan once the three distinct models are cached. Graphs are
        // prebuilt and the key is hoisted and reused, exactly as in the
        // Scenario pipeline's request loop, so this times the borrowed
        // probe (two integer stores + hash probe + Arc bump) — not zoo
        // construction, key building or string cloning.
        let cache = PlanCache::new();
        let requests = hidp_workloads::repeating_stream(&SCALING_MODELS, 0.05, count);
        let stream = InferenceRequest::to_stream(&requests);
        let mut key = PlanKey::for_run(&strategy, &cluster, LEADER);
        for (_, graph) in &stream {
            key.graph_fingerprint = graph.fingerprint();
            key.batch = graph.input_shape().batch();
            cache
                .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
                .expect("planning succeeds");
        }
        let cached_plan_s = time_best_of(3, || {
            for (_, graph) in &stream {
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                std::hint::black_box(
                    cache
                        .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
                        .expect("planning succeeds"),
                );
            }
        });

        points.push(StreamScalingPoint {
            requests: count,
            tasks,
            event_sim_ms,
            list_sim_ms,
            speedup: list_sim_ms.map(|l| l / event_sim_ms),
            cached_plan_us_per_request: cached_plan_s * 1e6 / count as f64,
            plan_and_simulate_us_per_request: (cached_plan_s * 1e3 + event_sim_ms) * 1e3
                / count as f64,
        });
    }
    points
}

/// Renders stream-scaling points as an [`ExperimentTable`] (ms / µs mix; the
/// unit column names carry the units).
pub fn stream_scaling_table(points: &[StreamScalingPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Stream scaling: event-driven engine vs list-scheduling baseline",
        "ms / µs / ×",
        vec![
            "tasks".to_string(),
            "event_sim_ms".to_string(),
            "list_sim_ms".to_string(),
            "speedup_x".to_string(),
            "cached_plan_us_per_req".to_string(),
            "plan+sim_us_per_req".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            format!("{} requests", p.requests),
            vec![
                p.tasks as f64,
                p.event_sim_ms,
                p.list_sim_ms.unwrap_or(f64::NAN),
                p.speedup.unwrap_or(f64::NAN),
                p.cached_plan_us_per_request,
                p.plan_and_simulate_us_per_request,
            ],
        );
    }
    table
}

/// Serialises stream-scaling points as the `BENCH_stream_scaling.json`
/// perf-trajectory document (hand-rolled like [`tables_to_json`]: the build
/// environment has no serde_json). `reference_budget_ms` is the cap passed
/// to [`stream_scaling_points`], recorded so a `null` `list_sim_ms` is
/// attributable to the budget rather than silent skipping.
pub fn stream_scaling_json(points: &[StreamScalingPoint], reference_budget_ms: f64) -> String {
    fn opt(v: Option<f64>) -> String {
        match v {
            Some(v) if v.is_finite() => format!("{v}"),
            _ => "null".to_string(),
        }
    }
    let mut out = String::from("{\n  \"benchmark\": \"stream_scaling\",\n");
    out.push_str("  \"workload\": \"Mix-5 cycle (efficientnet_b0, inception_v3, resnet152), 0.05 s inter-arrival, HiDP plans via PlanCache\",\n");
    out.push_str(&format!(
        "  \"reference_budget_ms\": {reference_budget_ms},\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"requests\": {}, \"tasks\": {}, \"event_sim_ms\": {}, \"list_sim_ms\": {}, \"speedup\": {}, \"cached_plan_us_per_request\": {}, \"plan_and_simulate_us_per_request\": {}}}{}\n",
            p.requests,
            p.tasks,
            opt(Some(p.event_sim_ms)),
            opt(p.list_sim_ms),
            opt(p.speedup),
            opt(Some(p.cached_plan_us_per_request)),
            opt(Some(p.plan_and_simulate_us_per_request)),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Warm path: the zero-copy steady-state serving loop
// ---------------------------------------------------------------------------

/// One measured point of the warm-path experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WarmPathPoint {
    /// Stream length in requests.
    pub requests: usize,
    /// Total task count across all plans.
    pub tasks: usize,
    /// Per-request cost of resolving a cached plan through the borrowed
    /// keyed probe (reused [`PlanKey`], read lock, `Arc` bump), µs.
    pub cached_plan_us_per_request: f64,
    /// Per-request cost of the full steady-state pass: resolve every plan
    /// and simulate the stream into a reused [`SimScratch`] at
    /// [`TraceDetail::Summary`], µs.
    pub plan_and_simulate_us_per_request: f64,
    /// Steady-state serving rate implied by the full pass.
    pub requests_per_second: f64,
    /// Heap allocations performed by one steady-state pass after warm-up
    /// (`None` when no counting allocator was supplied; the zero-copy
    /// contract is that this is zero).
    pub steady_state_allocs: Option<u64>,
}

/// Measures the warm (steady-state) evaluation path at each stream length
/// in `sizes`: the Mix-5 cycle at 0.05 s inter-arrival, all plans cached,
/// the key hoisted, the simulation scratch reused, the trace summarised —
/// the exact loop the serving-scale pipeline runs per request once planning
/// has warmed up.
///
/// `alloc_count` is an optional monotone allocation counter (the
/// `exp_warm_path` binary passes its counting `#[global_allocator]`); when
/// present, each point audits one steady-state pass and records how many
/// allocations it performed — the zero-copy acceptance bar is zero.
pub fn warm_path_points(
    sizes: &[usize],
    alloc_count: Option<&dyn Fn() -> u64>,
) -> Vec<WarmPathPoint> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let mut points = Vec::with_capacity(sizes.len());
    for &count in sizes {
        let requests = hidp_workloads::repeating_stream(&SCALING_MODELS, 0.05, count);
        let stream = InferenceRequest::to_stream(&requests);
        let cache = PlanCache::new();
        let mut key = PlanKey::for_run(&strategy, &cluster, LEADER);
        // Warm the cache (three planner invocations).
        for (_, graph) in &stream {
            key.graph_fingerprint = graph.fingerprint();
            key.batch = graph.input_shape().batch();
            cache
                .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
                .expect("planning succeeds");
        }

        // Cached planning alone.
        let cached_plan_s = time_best_of(3, || {
            for (_, graph) in &stream {
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                std::hint::black_box(
                    cache
                        .plan_keyed(&key, &strategy, graph, &cluster, LEADER)
                        .expect("planning succeeds"),
                );
            }
        });

        // The full steady-state pass: plan every request into a reused
        // buffer, simulate into a reused scratch, no trace.
        let mut scratch = SimScratch::new();
        let mut planned: Vec<(f64, Arc<ExecutionPlan>)> = Vec::with_capacity(count);
        let warm_pass = |key: &mut PlanKey,
                         planned: &mut Vec<(f64, Arc<ExecutionPlan>)>,
                         scratch: &mut SimScratch| {
            planned.clear();
            for (arrival, graph) in &stream {
                key.graph_fingerprint = graph.fingerprint();
                key.batch = graph.input_shape().batch();
                let (plan, _) = cache
                    .plan_keyed(key, &strategy, graph, &cluster, LEADER)
                    .expect("planning succeeds");
                planned.push((*arrival, plan));
            }
            std::hint::black_box(
                simulate_stream_in(scratch, planned, &cluster, TraceDetail::Summary)
                    .expect("stream simulates"),
            );
        };
        // Warm-up pass sizes every buffer.
        warm_pass(&mut key, &mut planned, &mut scratch);
        let tasks: usize = planned.iter().map(|(_, p)| p.len()).sum();
        // Allocation audit of one steady-state pass.
        let steady_state_allocs = alloc_count.map(|count_allocs| {
            let before = count_allocs();
            warm_pass(&mut key, &mut planned, &mut scratch);
            count_allocs() - before
        });
        let plan_and_simulate_s =
            time_best_of(3, || warm_pass(&mut key, &mut planned, &mut scratch));

        points.push(WarmPathPoint {
            requests: count,
            tasks,
            cached_plan_us_per_request: cached_plan_s * 1e6 / count as f64,
            plan_and_simulate_us_per_request: plan_and_simulate_s * 1e6 / count as f64,
            requests_per_second: count as f64 / plan_and_simulate_s,
            steady_state_allocs,
        });
    }
    points
}

/// Renders warm-path points as an [`ExperimentTable`].
pub fn warm_path_table(points: &[WarmPathPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Warm path: zero-copy plan-and-simulate steady state",
        "µs / req/s / allocs",
        vec![
            "tasks".to_string(),
            "cached_plan_us_per_req".to_string(),
            "plan+sim_us_per_req".to_string(),
            "requests_per_s".to_string(),
            "steady_state_allocs".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            format!("{} requests", p.requests),
            vec![
                p.tasks as f64,
                p.cached_plan_us_per_request,
                p.plan_and_simulate_us_per_request,
                p.requests_per_second,
                p.steady_state_allocs.map(|a| a as f64).unwrap_or(f64::NAN),
            ],
        );
    }
    table
}

/// Serialises warm-path points as the `BENCH_warm_path.json` perf-trajectory
/// document (hand-rolled like [`tables_to_json`]: the build environment has
/// no serde_json).
pub fn warm_path_json(points: &[WarmPathPoint]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"warm_path\",\n");
    out.push_str("  \"workload\": \"Mix-5 cycle (efficientnet_b0, inception_v3, resnet152), 0.05 s inter-arrival, HiDP plans via warm PlanCache, Arc-shared plans, reused SimScratch, TraceDetail::Summary\",\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"requests\": {}, \"tasks\": {}, \"cached_plan_us_per_request\": {}, \"plan_and_simulate_us_per_request\": {}, \"requests_per_second\": {}, \"steady_state_allocs\": {}}}{}\n",
            p.requests,
            p.tasks,
            p.cached_plan_us_per_request,
            p.plan_and_simulate_us_per_request,
            p.requests_per_second,
            p.steady_state_allocs
                .map(|a| a.to_string())
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Poisson stress: latency tails under open-loop arrivals
// ---------------------------------------------------------------------------

/// Poisson stress experiment: for each arrival rate (requests/second) and
/// each strategy, serves an open-loop Poisson stream of `count` requests
/// drawn uniformly from the four target DNNs — SLA classes cycling
/// premium/standard/best-effort — through the **serving runtime** in its
/// degenerate mode (FIFO, batch = 1, unbounded window, static cluster),
/// which is bit-identical to the old static pipeline. Latency percentiles
/// come from the sim layer's [`ServingMetrics`] reporter: overall
/// p50/p95/p99 plus a per-SLA-class breakdown, all in milliseconds. The
/// strategy × rate grid fans out on [`ParallelSweep`] against one shared
/// sharded [`PlanCache`].
pub fn poisson_stress(rates: &[f64], count: usize, seed: u64) -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let strategies = paper_strategies();
    let mut columns = vec![
        "rate_per_s".to_string(),
        "p50_ms".to_string(),
        "p95_ms".to_string(),
        "p99_ms".to_string(),
    ];
    for class in SlaClass::ALL {
        for tail in ["p50", "p95", "p99"] {
            columns.push(format!("{}_{}_ms", class.name(), tail));
        }
    }
    let mut table = ExperimentTable::new(
        "Poisson stress: latency percentiles vs arrival rate (per SLA class)",
        "ms",
        columns,
    );
    // Percentile latencies only — Summary detail; FIFO/batch=1/unbounded is
    // the degenerate serving mode, so these numbers match the static
    // pipeline's exactly.
    let scenarios: Vec<ServingScenario> = rates
        .iter()
        .map(|&rate| {
            InferenceRequest::to_serving_scenario(&poisson_stream_classed(
                &WorkloadModel::ALL,
                rate,
                count,
                seed,
                &SlaClass::ALL,
            ))
            .with_trace_detail(TraceDetail::Summary)
        })
        .collect();
    let (cluster_ref, scenarios_ref) = (&cluster, &scenarios);
    let jobs: Vec<ServingSweepJob<'_>> = strategies
        .iter()
        .flat_map(|s| {
            scenarios_ref.iter().map(move |scenario| ServingSweepJob {
                scenario,
                strategy: s.as_ref(),
                cluster: cluster_ref,
                leader: LEADER,
            })
        })
        .collect();
    let cache = PlanCache::new();
    let evaluations: Vec<ServingEvaluation> = sweep()
        .run_serving(&jobs, &cache)
        .into_iter()
        .map(|r| r.expect("poisson evaluation succeeds"))
        .collect();
    for (row, strategy) in strategies.iter().enumerate() {
        for (col, &rate) in rates.iter().enumerate() {
            let serving = &evaluations[row * rates.len() + col].serving;
            let mut values = vec![
                rate,
                serving.latency.p50 * 1e3,
                serving.latency.p95 * 1e3,
                serving.latency.p99 * 1e3,
            ];
            for class in SlaClass::ALL {
                let tail = serving.class(class).expect("all classes in the cycle");
                values.extend([
                    tail.latency.p50 * 1e3,
                    tail.latency.p95 * 1e3,
                    tail.latency.p99 * 1e3,
                ]);
            }
            table.push_row(format!("{} @ {rate}/s", strategy.name()), values);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// Serving runtime: admission policies × failure patterns × dynamic batching
// ---------------------------------------------------------------------------

/// The admission-policy variants the serving experiment compares:
/// `(name, policy, max_batch)`. Three unbatched policies plus FIFO with the
/// dynamic batcher coalescing up to 8 same-model requests per plan.
pub fn serving_policies() -> Vec<(&'static str, AdmissionPolicy, usize)> {
    vec![
        ("fifo", AdmissionPolicy::Fifo, 1),
        ("priority", AdmissionPolicy::Priority, 1),
        ("edf", AdmissionPolicy::EarliestDeadline, 1),
        ("fifo-batch8", AdmissionPolicy::Fifo, 8),
    ]
}

/// The failure patterns the serving experiment replays (paper Eq. 4): a
/// static cluster, one node blipping out and back, and a rolling pair of
/// outages. The leader (node 1) never fails — requests keep arriving there.
pub fn serving_failure_patterns() -> Vec<(&'static str, ClusterTimeline)> {
    vec![
        ("none", ClusterTimeline::new()),
        (
            "blip",
            ClusterTimeline::new()
                .node_down(2.0, NodeIndex(4))
                .expect("static event times are valid")
                .node_up(6.0, NodeIndex(4))
                .expect("static event times are valid"),
        ),
        (
            "rolling",
            ClusterTimeline::new()
                .node_down(1.0, NodeIndex(2))
                .expect("static event times are valid")
                .node_up(4.0, NodeIndex(2))
                .expect("static event times are valid")
                .node_down(5.0, NodeIndex(4))
                .expect("static event times are valid")
                .node_up(8.0, NodeIndex(4))
                .expect("static event times are valid"),
        ),
    ]
}

/// Builds the serving experiment's scenario grid: for every policy ×
/// failure-pattern cell, the same bursty workload (`count` requests in
/// bursts of 8 — one model per burst cycling through [`SCALING_MODELS`],
/// SLA classes cycling premium/standard/best-effort) served with an
/// admission window of 2 in-flight batches. Returns
/// `(policy_name, failure_name, scenario)` triples in grid order.
pub fn serving_scenarios(count: usize) -> Vec<(String, String, ServingScenario)> {
    let requests = InferenceRequest::to_serving(&bursty_stream(
        &SCALING_MODELS,
        8,
        0.4,
        count,
        &SlaClass::ALL,
    ));
    serving_policies()
        .into_iter()
        .flat_map(|(policy_name, policy, max_batch)| {
            let requests = requests.clone();
            serving_failure_patterns()
                .into_iter()
                .map(move |(failure_name, timeline)| {
                    let scenario = ServingScenario::new(requests.clone())
                        .with_label(format!("{policy_name}/{failure_name}"))
                        .with_policy(policy)
                        .with_max_batch(max_batch)
                        .with_max_inflight(Some(2))
                        .with_timeline(timeline)
                        .with_trace_detail(TraceDetail::Summary);
                    (policy_name.to_string(), failure_name.to_string(), scenario)
                })
        })
        .collect()
}

/// Runs a serving-scenario grid through [`ParallelSweep::run_serving`] at
/// the given worker-thread count (0 = the host's available parallelism)
/// against one shared sharded [`PlanCache`], in grid order. Results are
/// bit-identical at every thread count (the `exp_serving` binary and CI
/// assert this at 1/2/4 threads).
pub fn serving_evaluations(
    scenarios: &[(String, String, ServingScenario)],
    threads: usize,
) -> Vec<ServingEvaluation> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let jobs: Vec<ServingSweepJob<'_>> = scenarios
        .iter()
        .map(|(_, _, scenario)| ServingSweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: LEADER,
        })
        .collect();
    let cache = PlanCache::new();
    let sweep = if threads == 0 {
        ParallelSweep::with_available_parallelism()
    } else {
        ParallelSweep::new(threads)
    };
    sweep
        .run_serving(&jobs, &cache)
        .into_iter()
        .map(|r| r.expect("serving evaluation succeeds"))
        .collect()
}

/// One cell of the serving experiment grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingGridPoint {
    /// Admission-policy variant name (see [`serving_policies`]).
    pub policy: String,
    /// Batching limit of the variant.
    pub max_batch: usize,
    /// Failure-pattern name (see [`serving_failure_patterns`]).
    pub failure: String,
    /// Requests served.
    pub requests: usize,
    /// Admitted batches (`< requests` once the batcher coalesces).
    pub batches: usize,
    /// Timeline events applied during the run.
    pub epochs: usize,
    /// Completion time of the whole served stream, simulated seconds.
    pub makespan_s: f64,
    /// Served throughput: requests over the serving makespan.
    pub requests_per_second: f64,
    /// Median end-to-end latency (queueing included), ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// Mean queueing delay (admission − arrival), ms.
    pub mean_queueing_ms: f64,
    /// Fraction of requests that missed their class deadline.
    pub sla_miss_rate: f64,
    /// 99th-percentile latency of the premium class, ms.
    pub premium_p99_ms: f64,
}

/// Distills grid evaluations into [`ServingGridPoint`]s (same order).
pub fn serving_points(
    scenarios: &[(String, String, ServingScenario)],
    evaluations: &[ServingEvaluation],
) -> Vec<ServingGridPoint> {
    scenarios
        .iter()
        .zip(evaluations)
        .map(|((policy, failure, scenario), evaluation)| {
            let serving = &evaluation.serving;
            let premium = serving
                .class(SlaClass::Premium)
                .expect("the workload cycles all classes");
            ServingGridPoint {
                policy: policy.clone(),
                max_batch: scenario.config().max_batch,
                failure: failure.clone(),
                requests: serving.requests,
                batches: evaluation.admissions.len(),
                epochs: evaluation.epochs_applied,
                makespan_s: evaluation.evaluation.makespan,
                requests_per_second: evaluation.requests_per_second(),
                p50_ms: serving.latency.p50 * 1e3,
                p99_ms: serving.latency.p99 * 1e3,
                mean_queueing_ms: serving.mean_queueing_delay * 1e3,
                sla_miss_rate: serving.sla_miss_rate(),
                premium_p99_ms: premium.latency.p99 * 1e3,
            }
        })
        .collect()
}

/// Renders serving grid points as an [`ExperimentTable`].
pub fn serving_table(points: &[ServingGridPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Serving runtime: admission policy x failure pattern (bursty Mix-5 traffic)",
        "req/s / ms / rate",
        vec![
            "batches".to_string(),
            "epochs".to_string(),
            "makespan_s".to_string(),
            "requests_per_s".to_string(),
            "p50_ms".to_string(),
            "p99_ms".to_string(),
            "queueing_ms".to_string(),
            "sla_miss_rate".to_string(),
            "premium_p99_ms".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            format!("{} / {}", p.policy, p.failure),
            vec![
                p.batches as f64,
                p.epochs as f64,
                p.makespan_s,
                p.requests_per_second,
                p.p50_ms,
                p.p99_ms,
                p.mean_queueing_ms,
                p.sla_miss_rate,
                p.premium_p99_ms,
            ],
        );
    }
    table
}

/// One point of the dynamic-batching comparison: the same workload served
/// with a different batching limit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingBatchingPoint {
    /// The batcher's coalescing limit (1 = no batching).
    pub max_batch: usize,
    /// Requests served.
    pub requests: usize,
    /// Admitted batches.
    pub batches: usize,
    /// Served throughput: requests over the serving makespan.
    pub requests_per_second: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// Throughput relative to the `max_batch == 1` point.
    pub speedup_vs_unbatched: f64,
}

/// Serves one burst-train workload with batching limits 1, 4 and 8 under a
/// serial dispatch window — the shared core of the two batching regimes.
fn batching_sweep(requests: &[hidp_core::ServingRequest]) -> Vec<ServingBatchingPoint> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let cache = PlanCache::new();
    let mut scratch = hidp_core::ServingScratch::new();
    let mut points = Vec::new();
    let mut unbatched_rps = f64::NAN;
    for max_batch in [1usize, 4, 8] {
        let result = ServingScenario::new(requests.to_vec())
            .with_label(format!("batching[k={max_batch}]"))
            .with_max_batch(max_batch)
            .with_max_inflight(Some(1))
            .with_trace_detail(TraceDetail::Summary)
            .run_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("batching evaluation succeeds");
        let rps = result.requests_per_second();
        if max_batch == 1 {
            unbatched_rps = rps;
        }
        points.push(ServingBatchingPoint {
            max_batch,
            requests: result.serving.requests,
            batches: result.admissions.len(),
            requests_per_second: rps,
            p99_ms: result.serving.latency.p99 * 1e3,
            speedup_vs_unbatched: rps / unbatched_rps,
        });
    }
    points
}

/// The **transfer-bound** dynamic-batching workload point: a saturating
/// Inception-V3 burst train (bursts of 8, 0.3 s apart — Inception's HiDP
/// plan crosses nodes eight times per inference, so every unbatched request
/// pays eight 2 ms message latencies) under a **serial dispatch window**
/// (`max_inflight = 1`), served with batching limits 1, 4 and 8. Coalescing
/// k requests into one batched plan pays the per-message latency once per
/// batch instead of once per request, so throughput rises and p99 falls
/// with k.
pub fn serving_batching_points(count: usize) -> Vec<ServingBatchingPoint> {
    batching_sweep(&InferenceRequest::to_serving(&bursty_stream(
        &[WorkloadModel::InceptionV3],
        8,
        0.3,
        count,
        &SlaClass::ALL,
    )))
}

/// The **compute-bound** dynamic-batching workload point: the same burst
/// train shape over ResNet-152, whose HiDP plan is dominated by on-device
/// FLOPs rather than cross-node messages. Here batching wins through the
/// sublinear batch cost model (`Processor::batch_efficiency`): a batch of k
/// amortises per-launch overhead, so its compute time grows sublinearly in
/// k and throughput rises even with nothing to amortise on the network.
/// The magnitude is capped by the least batch-efficient processor on the
/// critical path — HiDP's split gives the CPU shares real work, and CPU
/// batch efficiency is only ~1.1 at k = 8 (GPUs reach ~1.8) — so expect a
/// solid ~1.10x rather than the GPU-only bound.
pub fn serving_batching_compute_points(count: usize) -> Vec<ServingBatchingPoint> {
    batching_sweep(&InferenceRequest::to_serving(&bursty_stream(
        &[WorkloadModel::ResNet152],
        8,
        0.3,
        count,
        &SlaClass::ALL,
    )))
}

/// Renders batching points as an [`ExperimentTable`].
pub fn serving_batching_table(points: &[ServingBatchingPoint]) -> ExperimentTable {
    serving_batching_table_titled(
        points,
        "Dynamic batching: Inception-V3 burst train, serial dispatch window",
    )
}

/// [`serving_batching_table`] with a caller-supplied title (the transfer-
/// and compute-bound regimes share the format).
pub fn serving_batching_table_titled(
    points: &[ServingBatchingPoint],
    title: &str,
) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        title,
        "req/s / ms / x",
        vec![
            "batches".to_string(),
            "requests_per_s".to_string(),
            "p99_ms".to_string(),
            "speedup_x".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            format!("k={}", p.max_batch),
            vec![
                p.batches as f64,
                p.requests_per_second,
                p.p99_ms,
                p.speedup_vs_unbatched,
            ],
        );
    }
    table
}

/// Serialises the serving grid and the batching comparison as the
/// `BENCH_serving.json` perf-trajectory document (hand-rolled like
/// [`tables_to_json`]: the build environment has no serde_json).
pub fn serving_json(
    points: &[ServingGridPoint],
    batching: &[ServingBatchingPoint],
    batching_compute: &[ServingBatchingPoint],
    count: usize,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"serving\",\n");
    out.push_str(&format!(
        "  \"workload\": \"bursty Mix-5 traffic: {count} requests in bursts of 8 (one model per burst, 0.4 s apart), SLA classes cycling premium/standard/best_effort, HiDP planning, admission window 2\",\n"
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"max_batch\": {}, \"failure\": \"{}\", \"requests\": {}, \"batches\": {}, \"epochs\": {}, \"makespan_s\": {}, \"requests_per_second\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"mean_queueing_ms\": {}, \"sla_miss_rate\": {}, \"premium_p99_ms\": {}}}{}\n",
            p.policy,
            p.max_batch,
            p.failure,
            p.requests,
            p.batches,
            p.epochs,
            p.makespan_s,
            p.requests_per_second,
            p.p50_ms,
            p.p99_ms,
            p.mean_queueing_ms,
            p.sla_miss_rate,
            p.premium_p99_ms,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"batching_workload\": \"Inception-V3 burst train (bursts of 8, 0.3 s apart), serial dispatch window (max_inflight 1), FIFO\",\n",
    );
    out.push_str("  \"batching\": [\n");
    push_batching_points(&mut out, batching);
    out.push_str("  ],\n");
    out.push_str(
        "  \"batching_compute_workload\": \"ResNet-152 burst train (bursts of 8, 0.3 s apart), serial dispatch window (max_inflight 1), FIFO — compute-bound, wins via the sublinear batch cost model\",\n",
    );
    out.push_str("  \"batching_compute\": [\n");
    push_batching_points(&mut out, batching_compute);
    out.push_str("  ]\n}\n");
    out
}

/// Appends batching points as JSON array elements (shared by the transfer-
/// and compute-bound sections of [`serving_json`]).
fn push_batching_points(out: &mut String, batching: &[ServingBatchingPoint]) {
    for (i, p) in batching.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"max_batch\": {}, \"requests\": {}, \"batches\": {}, \"requests_per_second\": {}, \"p99_ms\": {}, \"speedup_vs_unbatched\": {}}}{}\n",
            p.max_batch,
            p.requests,
            p.batches,
            p.requests_per_second,
            p.p99_ms,
            p.speedup_vs_unbatched,
            if i + 1 < batching.len() { "," } else { "" }
        ));
    }
}

// ---------------------------------------------------------------------------
// Soak: the streaming serving loop at 10^6-request scale, bounded memory
// ---------------------------------------------------------------------------

/// One measured soak pass: the streaming serving loop
/// ([`ServingScenario::run_streaming_with_cache_in`]) over a diurnal trace,
/// timed wall-clock and audited for steady-state allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakPoint {
    /// Admission policy + batching config of the pass.
    pub config: String,
    /// Requests served.
    pub requests: usize,
    /// Admitted batches.
    pub batches: usize,
    /// Wall-clock time of the audited steady-state pass, seconds.
    pub wall_seconds: f64,
    /// Requests processed per wall-clock second (the soak throughput gate).
    pub requests_per_wall_second: f64,
    /// Simulated makespan of the served trace, seconds.
    pub sim_makespan_s: f64,
    /// Simulated served throughput: requests over the makespan.
    pub sim_requests_per_second: f64,
    /// Median end-to-end latency, ms (P² estimate).
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms (P² estimate).
    pub p99_ms: f64,
    /// Mean queueing delay, ms (exact).
    pub mean_queueing_ms: f64,
    /// Fraction of requests missing their SLA deadline.
    pub sla_miss_rate: f64,
    /// Heap allocations during the audited steady-state pass (`None` when
    /// no counter was supplied). The bounded-memory contract is 0: after
    /// the warm pass, the loop runs entirely on reused buffers and `Copy`
    /// accumulators, so memory cannot grow with the request count.
    pub steady_state_allocs: Option<u64>,
}

/// The soak trace: a diurnal (day/night sinusoidal-rate) Poisson stream over
/// the Mix-5 model cycle with SLA classes, the workload shape
/// `hidp_workloads::diurnal_stream` exists for. Deterministic.
pub fn soak_trace(count: usize) -> Vec<hidp_core::ServingRequest> {
    InferenceRequest::to_serving(&hidp_workloads::diurnal_stream(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        // The cluster serves this mix at ~18 req/s (batch 8, window 4), so
        // a trough of 8 req/s and a peak of 24 req/s swing the system
        // through under- and over-capacity each "day": the queue builds
        // real depth at the peak and drains at the trough instead of
        // diverging into pure backlog.
        8.0,
        24.0,
        2000.0,
        count,
        42,
        &SlaClass::ALL,
    ))
}

/// Runs the soak: for each config, one warm pass (cold planning + buffer
/// sizing), then one timed, allocation-audited steady-state pass over the
/// full trace. The two passes must agree bit for bit — the audited pass is
/// not a different code path.
pub fn soak_points(count: usize, counter: Option<&dyn Fn() -> u64>) -> Vec<SoakPoint> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = soak_trace(count);
    let configs = [
        ("fifo-batch8", AdmissionPolicy::Fifo),
        ("edf-batch8", AdmissionPolicy::EarliestDeadline),
    ];
    let mut points = Vec::new();
    for (label, policy) in configs {
        let scenario = ServingScenario::new(requests.clone())
            .with_label(format!("soak-{label}"))
            .with_policy(policy)
            .with_max_batch(8)
            .with_max_inflight(Some(4));
        let cache = PlanCache::new();
        let mut scratch = hidp_core::ServingScratch::new();
        let warm = scenario
            .run_streaming_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("soak warm pass succeeds");

        let before = counter.map(|f| f());
        let start = Instant::now();
        let summary = scenario
            .run_streaming_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("soak steady-state pass succeeds");
        let wall_seconds = start.elapsed().as_secs_f64();
        let steady_state_allocs = counter.map(|f| f() - before.unwrap());

        assert_eq!(summary.makespan, warm.makespan, "passes must agree");
        assert_eq!(summary.batches, warm.batches);
        points.push(SoakPoint {
            config: label.to_string(),
            requests: summary.requests,
            batches: summary.batches,
            wall_seconds,
            requests_per_wall_second: summary.requests as f64 / wall_seconds,
            sim_makespan_s: summary.makespan,
            sim_requests_per_second: summary.requests_per_second(),
            p50_ms: summary.latency.p50 * 1e3,
            p99_ms: summary.latency.p99 * 1e3,
            mean_queueing_ms: summary.mean_queueing_delay * 1e3,
            sla_miss_rate: summary.sla_miss_rate(),
            steady_state_allocs,
        });
    }
    points
}

/// Renders soak points as an [`ExperimentTable`].
pub fn soak_table(points: &[SoakPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Soak: streaming serving over a diurnal trace (P² tails, zero-alloc steady state)",
        "req/s / ms",
        vec![
            "requests".to_string(),
            "batches".to_string(),
            "wall_s".to_string(),
            "req_per_wall_s".to_string(),
            "p50_ms".to_string(),
            "p99_ms".to_string(),
            "queueing_ms".to_string(),
            "allocs".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            p.config.clone(),
            vec![
                p.requests as f64,
                p.batches as f64,
                p.wall_seconds,
                p.requests_per_wall_second,
                p.p50_ms,
                p.p99_ms,
                p.mean_queueing_ms,
                p.steady_state_allocs.map_or(-1.0, |a| a as f64),
            ],
        );
    }
    table
}

/// Serialises soak points as the `BENCH_soak.json` perf-trajectory document
/// (hand-rolled like [`tables_to_json`]: the build environment has no
/// serde_json).
pub fn soak_json(points: &[SoakPoint]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"soak\",\n");
    out.push_str(
        "  \"workload\": \"diurnal Mix-5 trace (trough 8 req/s, peak 24 req/s around the ~18 req/s service capacity, 2000 s period, seed 42), SLA classes cycling, HiDP planning, max_batch 8, admission window 4, streaming mode (no per-request records, P2 latency sketches)\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"requests\": {}, \"batches\": {}, \"wall_seconds\": {}, \"requests_per_wall_second\": {}, \"sim_makespan_s\": {}, \"sim_requests_per_second\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"mean_queueing_ms\": {}, \"sla_miss_rate\": {}, \"steady_state_allocs\": {}}}{}\n",
            p.config,
            p.requests,
            p.batches,
            p.wall_seconds,
            p.requests_per_wall_second,
            p.sim_makespan_s,
            p.sim_requests_per_second,
            p.p50_ms,
            p.p99_ms,
            p.mean_queueing_ms,
            p.sla_miss_rate,
            p.steady_state_allocs
                .map_or("null".to_string(), |a| a.to_string()),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Fleet: multi-cluster routing on one clock, at soak scale
// ---------------------------------------------------------------------------

/// One measured fleet pass: [`FleetScenario::run_streaming_in`] over a
/// skewed regional diurnal trace under one routing policy, timed wall-clock
/// and (at one thread) audited for steady-state allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPoint {
    /// Routing policy of the pass.
    pub routing: String,
    /// Requests served.
    pub requests: usize,
    /// Clusters in the fleet.
    pub clusters: usize,
    /// Wall-clock time of the audited steady-state pass, seconds.
    pub wall_seconds: f64,
    /// Requests processed per wall-clock second.
    pub requests_per_wall_second: f64,
    /// Simulated served throughput: requests over the fleet makespan.
    pub sim_requests_per_second: f64,
    /// Median end-to-end latency, ms (histogram-bin resolution).
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms (histogram-bin resolution).
    pub p99_ms: f64,
    /// Mean queueing delay, ms (exact).
    pub mean_queueing_ms: f64,
    /// Mean WAN round trip paid per request, ms (exact).
    pub mean_wan_ms: f64,
    /// Fraction of requests missing their SLA deadline.
    pub sla_miss_rate: f64,
    /// Requests on the most-loaded cluster (routing balance signal).
    pub busiest_cluster_requests: usize,
    /// Requests on the least-loaded cluster.
    pub idlest_cluster_requests: usize,
    /// Heap allocations during the audited steady-state pass (`None` when
    /// no counter was supplied). The contract is 0 at one thread: every
    /// cluster's serving loop runs on reused scratch, and per-request fleet
    /// state is `Copy`.
    pub steady_state_allocs: Option<u64>,
}

/// The four routing policies the fleet experiment compares, dumb to smart.
pub fn fleet_routing_policies() -> [RoutingPolicy; 4] {
    [
        RoutingPolicy::Random { seed: 7 },
        RoutingPolicy::StaticHash,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::Locality,
    ]
}

/// The fleet trace: a skewed regional diurnal stream — every region runs
/// the soak's day/night Poisson shape, phase-shifted per region
/// ("follow the sun") and weighted so the first regions carry several times
/// the load of the last — over the Mix-5 model cycle with SLA classes.
/// `rate_scale` multiplies the shared base/peak rates, so callers can pin
/// the offered load to the fleet's serving capacity independently of the
/// region count. Deterministic.
pub fn fleet_trace(count: usize, regions: usize, rate_scale: f64) -> Vec<FleetRequest> {
    // Weights 4, 2, 1, 1, … : the hot region dominates, which is exactly
    // what static spreading cannot exploit and load/locality awareness can.
    let weights: Vec<f64> = (0..regions)
        .map(|r| match r {
            0 => 4.0,
            1 => 2.0,
            _ => 1.0,
        })
        .collect();
    hidp_workloads::regional_diurnal_stream(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        &weights,
        2.0 * rate_scale,
        8.0 * rate_scale,
        240.0,
        count,
        42,
        &SlaClass::ALL,
    )
}

/// Wraps the trace and serving config shared by every routing policy of the
/// fleet comparison: EDF admission, batch 8, window 4 per cluster — the
/// soak's per-cluster serving shape.
pub fn fleet_scenario(requests: Vec<FleetRequest>, routing: RoutingPolicy) -> FleetScenario {
    FleetScenario::new(requests)
        .with_label(format!("fleet-{}", routing.name()))
        .with_routing(routing)
        .with_policy(AdmissionPolicy::EarliestDeadline)
        .with_max_batch(8)
        .with_max_inflight(Some(4))
}

/// Runs the routing comparison: the same trace through every policy of
/// [`fleet_routing_policies`] on a generated fleet — equal offered
/// throughput, only the routing differs. One warm pass per policy (cold
/// planning + scratch sizing), then one timed, allocation-audited
/// steady-state pass at one thread. Returns the measured points in policy
/// order.
pub fn fleet_routing_points(
    count: usize,
    clusters: usize,
    regions: usize,
    rate_scale: f64,
    counter: Option<&dyn Fn() -> u64>,
) -> Vec<FleetPoint> {
    let fleet = presets::generated_fleet(clusters, regions).expect("fleet preset is valid");
    let strategy = HidpStrategy::new();
    let requests = fleet_trace(count, regions, rate_scale);
    let sweep = ParallelSweep::new(1);
    let mut points = Vec::new();
    for routing in fleet_routing_policies() {
        let scenario = fleet_scenario(requests.clone(), routing);
        let mut scratch = FleetScratch::new();
        let warm = scenario
            .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
            .expect("fleet warm pass succeeds");

        let before = counter.map(|f| f());
        let start = Instant::now();
        let summary = scenario
            .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
            .expect("fleet steady-state pass succeeds");
        let wall_seconds = start.elapsed().as_secs_f64();
        let steady_state_allocs = counter.map(|f| f() - before.unwrap());

        assert_eq!(summary.makespan, warm.makespan, "passes must agree");
        assert_eq!(summary.batches, warm.batches);
        points.push(fleet_point(
            routing,
            &summary,
            wall_seconds,
            steady_state_allocs,
        ));
    }
    points
}

fn fleet_point(
    routing: RoutingPolicy,
    summary: &FleetSummary,
    wall_seconds: f64,
    steady_state_allocs: Option<u64>,
) -> FleetPoint {
    FleetPoint {
        routing: routing.name().to_string(),
        requests: summary.requests,
        clusters: summary.clusters,
        wall_seconds,
        requests_per_wall_second: summary.requests as f64 / wall_seconds,
        sim_requests_per_second: summary.requests_per_second(),
        p50_ms: summary.latency.p50 * 1e3,
        p99_ms: summary.latency.p99 * 1e3,
        mean_queueing_ms: summary.mean_queueing_delay * 1e3,
        mean_wan_ms: summary.mean_wan_round_trip * 1e3,
        sla_miss_rate: summary.sla_miss_rate(),
        busiest_cluster_requests: summary.busiest_cluster_requests,
        idlest_cluster_requests: summary.idlest_cluster_requests,
        steady_state_allocs,
    }
}

/// The fleet soak: one least-loaded pass over `count` requests across a
/// `clusters`-cluster fleet, warm pass first, then the timed steady-state
/// pass at `threads` workers. Returns the measured point.
pub fn fleet_soak_point(
    count: usize,
    clusters: usize,
    regions: usize,
    rate_scale: f64,
    threads: usize,
) -> FleetPoint {
    let fleet = presets::generated_fleet(clusters, regions).expect("fleet preset is valid");
    let strategy = HidpStrategy::new();
    let routing = RoutingPolicy::LeastLoaded;
    let scenario = fleet_scenario(fleet_trace(count, regions, rate_scale), routing);
    let sweep = ParallelSweep::new(threads);
    let mut scratch = FleetScratch::new();
    scenario
        .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
        .expect("fleet soak warm pass succeeds");
    let start = Instant::now();
    let summary = scenario
        .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
        .expect("fleet soak pass succeeds");
    let wall_seconds = start.elapsed().as_secs_f64();
    fleet_point(routing, &summary, wall_seconds, None)
}

/// Renders fleet points as an [`ExperimentTable`].
pub fn fleet_table(points: &[FleetPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fleet: routing policies over a skewed regional diurnal trace (equal offered load)",
        "req/s / ms",
        vec![
            "requests".to_string(),
            "clusters".to_string(),
            "wall_s".to_string(),
            "req_per_wall_s".to_string(),
            "p50_ms".to_string(),
            "p99_ms".to_string(),
            "queueing_ms".to_string(),
            "wan_ms".to_string(),
            "miss_rate".to_string(),
            "busiest".to_string(),
            "allocs".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            p.routing.clone(),
            vec![
                p.requests as f64,
                p.clusters as f64,
                p.wall_seconds,
                p.requests_per_wall_second,
                p.p50_ms,
                p.p99_ms,
                p.mean_queueing_ms,
                p.mean_wan_ms,
                p.sla_miss_rate,
                p.busiest_cluster_requests as f64,
                p.steady_state_allocs.map_or(-1.0, |a| a as f64),
            ],
        );
    }
    table
}

/// Serialises the routing comparison and the soak as the `BENCH_fleet.json`
/// perf-trajectory document (hand-rolled like [`tables_to_json`]: the build
/// environment has no serde_json).
pub fn fleet_json(points: &[FleetPoint], soak: Option<&FleetPoint>) -> String {
    let point_json = |p: &FleetPoint| {
        format!(
            "{{\"routing\": \"{}\", \"requests\": {}, \"clusters\": {}, \"wall_seconds\": {}, \"requests_per_wall_second\": {}, \"sim_requests_per_second\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"mean_queueing_ms\": {}, \"mean_wan_ms\": {}, \"sla_miss_rate\": {}, \"busiest_cluster_requests\": {}, \"idlest_cluster_requests\": {}, \"steady_state_allocs\": {}}}",
            p.routing,
            p.requests,
            p.clusters,
            p.wall_seconds,
            p.requests_per_wall_second,
            p.sim_requests_per_second,
            p.p50_ms,
            p.p99_ms,
            p.mean_queueing_ms,
            p.mean_wan_ms,
            p.sla_miss_rate,
            p.busiest_cluster_requests,
            p.idlest_cluster_requests,
            p.steady_state_allocs
                .map_or("null".to_string(), |a| a.to_string()),
        )
    };
    let mut out = String::from("{\n  \"benchmark\": \"fleet\",\n");
    out.push_str(
        "  \"workload\": \"skewed regional diurnal trace (region weights 4/2/1/..., phase-shifted sinusoidal rates, seed 42), Mix-5 model cycle, SLA classes cycling, HiDP planning, EDF admission, max_batch 8, window 4 per cluster, 1 s router rounds\",\n",
    );
    out.push_str("  \"routing_points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&point_json(p));
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    match soak {
        Some(p) => {
            out.push_str("  \"soak\": ");
            out.push_str(&point_json(p));
            out.push('\n');
        }
        None => out.push_str("  \"soak\": null\n"),
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Chaos: failure-domain robustness under a seeded fault suite
// ---------------------------------------------------------------------------

/// One measured chaos pass: the fleet under a seeded fault suite with one
/// recovery configuration, timed wall-clock and (at one thread) audited for
/// steady-state allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Recovery configuration of the pass (see [`chaos_points`]).
    pub config: String,
    /// Requests offered to the fleet.
    pub requests: usize,
    /// Offered/completed/dropped accounting including recovery traffic.
    pub robustness: RobustnessStats,
    /// In-deadline completions over offered requests — the robustness
    /// headline. A shed, aborted, lost or merely late request all count
    /// against it equally.
    pub sla_goodput: f64,
    /// 99th-percentile end-to-end latency of completed requests, ms.
    pub p99_ms: f64,
    /// Fraction of completed requests that missed their class deadline.
    pub sla_miss_rate: f64,
    /// Fleet makespan, simulated seconds.
    pub makespan_s: f64,
    /// Virtual time of the first kill that produced a re-routed retry
    /// (`None` when nothing was retried — fault-free and no-recovery runs).
    pub time_to_first_retry_s: Option<f64>,
    /// Latency tail over completions that needed at least one retry — the
    /// per-policy recovery cost; `None` when no retried request completed.
    pub recovery_latency: Option<LatencySummary>,
    /// Wall-clock time of the audited steady-state pass, seconds.
    pub wall_seconds: f64,
    /// Heap allocations during the audited steady-state pass (`None` when
    /// no counter was supplied). The contract is 0 at one thread: the
    /// recovery machinery — pending FIFO, retry heap, re-routing — runs
    /// entirely on reused scratch once warmed.
    pub steady_state_allocs: Option<u64>,
}

/// The fault suite the chaos experiment injects: one seeded
/// [`FaultPlan`] per cluster over the trace's span (flaps everywhere, a
/// rack outage on cluster 0, a straggler window on cluster 1, fleet-wide
/// WAN degradation from cluster 0's plan). Deterministic in `seed`.
pub fn chaos_fault_suite(node_counts: &[usize], horizon: f64, seed: u64) -> Vec<FaultPlan> {
    standard_fault_suite(node_counts, seed, horizon, LEADER)
        .expect("the generated fleet's clusters all have faultable nodes")
}

/// Wraps the fleet scenario every chaos configuration shares: the fleet
/// comparison's serving shape ([`fleet_scenario`]) with kill semantics
/// armed and the fault suite installed — timelines and straggler windows
/// per cluster, WAN degradation fleet-wide. Only `recovery` varies between
/// configurations.
pub fn chaos_scenario(
    requests: Vec<FleetRequest>,
    plans: &[FaultPlan],
    label: &str,
    recovery: RecoveryPolicy,
) -> FleetScenario {
    fleet_scenario(requests, RoutingPolicy::LeastLoaded)
        .with_label(format!("chaos-{label}"))
        .with_failure_mode(FailureMode::Kill)
        .with_recovery(recovery)
        .with_timelines(plans.iter().map(|p| p.timeline.clone()).collect())
        .with_slowdowns(plans.iter().map(|p| p.slowdowns.clone()).collect())
        .with_wan_degradations(plans[0].wan.clone())
}

/// The recovery configurations the chaos experiment compares, in order:
///
/// * `fault-free` — the same trace with no faults injected (the legacy
///   loop; the goodput yardstick);
/// * `no-recovery` — the fault suite with kills permanent (the degradation
///   baseline the gates require to measurably lose work);
/// * `retry-failover` — retry with backoff through the router, which
///   re-routes each killed request away from the cluster that killed it,
///   plus deadline abort (the standard recovery the gates certify);
/// * `retry-shed` — `retry-failover` plus proactive shedding of provably
///   late queued requests.
pub fn chaos_configs() -> Vec<(&'static str, Option<RecoveryPolicy>)> {
    vec![
        ("fault-free", None),
        ("no-recovery", Some(RecoveryPolicy::default())),
        ("retry-failover", Some(RecoveryPolicy::standard())),
        (
            "retry-shed",
            Some(RecoveryPolicy {
                shed: true,
                ..RecoveryPolicy::standard()
            }),
        ),
    ]
}

/// Runs the chaos experiment: the fleet-comparison trace through every
/// configuration of [`chaos_configs`] on a generated fleet under one seeded
/// fault suite — equal offered load, only the failure handling differs. One
/// warm pass per configuration (cold planning + scratch sizing), then one
/// timed, allocation-audited steady-state pass at one thread. Returns the
/// measured points in configuration order.
pub fn chaos_points(
    count: usize,
    clusters: usize,
    regions: usize,
    rate_scale: f64,
    seed: u64,
    counter: Option<&dyn Fn() -> u64>,
) -> Vec<ChaosPoint> {
    let fleet = presets::generated_fleet(clusters, regions).expect("fleet preset is valid");
    let strategy = HidpStrategy::new();
    let requests = fleet_trace(count, regions, rate_scale);
    // Faults land inside the arrival span, so every injected failure can
    // actually intersect live traffic.
    let horizon = requests
        .iter()
        .map(|r| r.request.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
    let plans = chaos_fault_suite(&node_counts, horizon, seed);
    let sweep = ParallelSweep::new(1);
    let mut points = Vec::new();
    for (label, recovery) in chaos_configs() {
        let scenario = match recovery {
            None => fleet_scenario(requests.clone(), RoutingPolicy::LeastLoaded)
                .with_label("chaos-fault-free".to_string()),
            Some(recovery) => chaos_scenario(requests.clone(), &plans, label, recovery),
        };
        let mut scratch = FleetScratch::new();
        let warm = scenario
            .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
            .expect("chaos warm pass succeeds");

        let before = counter.map(|f| f());
        let start = Instant::now();
        let summary = scenario
            .run_streaming_in(&strategy, &fleet, LEADER, &sweep, &mut scratch)
            .expect("chaos steady-state pass succeeds");
        let wall_seconds = start.elapsed().as_secs_f64();
        let steady_state_allocs = counter.map(|f| f() - before.unwrap());

        // Cache traffic differs between the cold and warm pass by design;
        // everything the gates read must agree bit for bit.
        assert_eq!(summary.makespan, warm.makespan, "passes must agree");
        assert_eq!(summary.batches, warm.batches);
        assert_eq!(summary.robustness, warm.robustness);
        assert_eq!(summary.latency, warm.latency);
        points.push(chaos_point(
            label,
            &summary,
            wall_seconds,
            steady_state_allocs,
        ));
    }
    points
}

fn chaos_point(
    label: &str,
    summary: &FleetSummary,
    wall_seconds: f64,
    steady_state_allocs: Option<u64>,
) -> ChaosPoint {
    let in_deadline = summary
        .robustness
        .completed
        .saturating_sub(summary.deadline_misses as u64);
    ChaosPoint {
        config: label.to_string(),
        requests: summary.requests,
        robustness: summary.robustness,
        sla_goodput: in_deadline as f64 / summary.robustness.offered as f64,
        p99_ms: summary.latency.p99 * 1e3,
        sla_miss_rate: summary.sla_miss_rate(),
        makespan_s: summary.makespan,
        time_to_first_retry_s: summary
            .time_to_first_retry
            .is_finite()
            .then_some(summary.time_to_first_retry),
        recovery_latency: summary.recovery_latency,
        wall_seconds,
        steady_state_allocs,
    }
}

/// Renders chaos points as an [`ExperimentTable`].
pub fn chaos_table(points: &[ChaosPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Chaos: recovery policies under a seeded fault suite (equal offered load)",
        "req / rate / ms",
        vec![
            "requests".to_string(),
            "completed".to_string(),
            "killed".to_string(),
            "retried".to_string(),
            "lost".to_string(),
            "shed".to_string(),
            "aborted".to_string(),
            "sla_goodput".to_string(),
            "p99_ms".to_string(),
            "ttfr_s".to_string(),
            "recovery_p99_ms".to_string(),
            "allocs".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            p.config.clone(),
            vec![
                p.requests as f64,
                p.robustness.completed as f64,
                p.robustness.killed as f64,
                p.robustness.retried as f64,
                p.robustness.lost as f64,
                p.robustness.shed as f64,
                p.robustness.aborted as f64,
                p.sla_goodput,
                p.p99_ms,
                p.time_to_first_retry_s.unwrap_or(-1.0),
                p.recovery_latency.map_or(-1.0, |l| l.p99 * 1e3),
                p.steady_state_allocs.map_or(-1.0, |a| a as f64),
            ],
        );
    }
    table
}

/// Renders an optional latency summary as a JSON object (or `null`), the
/// shape the chaos and drift documents nest for recovery tails.
fn latency_summary_json(summary: Option<&LatencySummary>) -> String {
    match summary {
        None => "null".to_string(),
        Some(l) => format!(
            "{{\"count\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \"mean_ms\": {}}}",
            l.count,
            l.p50 * 1e3,
            l.p95 * 1e3,
            l.p99 * 1e3,
            l.mean * 1e3
        ),
    }
}

/// Serialises chaos points as the `BENCH_chaos.json` perf-trajectory
/// document (hand-rolled like [`tables_to_json`]: the build environment has
/// no serde_json). Robustness accounting nests uniformly via
/// [`RobustnessStats::to_json`], the same shape `BENCH_drift.json` emits.
pub fn chaos_json(points: &[ChaosPoint], seed: u64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"chaos\",\n");
    out.push_str(
        "  \"workload\": \"skewed regional diurnal trace (fleet comparison shape), least-loaded routing, EDF admission, max_batch 8, window 4 per cluster; seeded fault suite: node flaps on every cluster, a correlated rack outage on cluster 0, a straggler window on cluster 1, fleet-wide WAN degradation\",\n",
    );
    out.push_str(&format!("  \"fault_seed\": {seed},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"requests\": {}, \"robustness\": {}, \"sla_goodput\": {}, \"p99_ms\": {}, \"sla_miss_rate\": {}, \"makespan_s\": {}, \"time_to_first_retry_s\": {}, \"recovery_latency\": {}, \"wall_seconds\": {}, \"steady_state_allocs\": {}}}{}\n",
            p.config,
            p.requests,
            p.robustness.to_json(),
            p.sla_goodput,
            p.p99_ms,
            p.sla_miss_rate,
            p.makespan_s,
            p.time_to_first_retry_s
                .map_or("null".to_string(), |t| t.to_string()),
            latency_summary_json(p.recovery_latency.as_ref()),
            p.wall_seconds,
            p.steady_state_allocs
                .map_or("null".to_string(), |a| a.to_string()),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Drift: adaptive re-planning under continuous throttling and contention
// ---------------------------------------------------------------------------

/// One measured drift pass: the serving tier under a seeded continuous
/// drift trace (thermal throttle ramps, background load, network
/// contention) with or without the adaptive estimation/re-planning loop,
/// timed wall-clock and audited for steady-state allocations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPoint {
    /// Drift/adaptive configuration of the pass (see [`drift_configs`]).
    pub config: String,
    /// Requests served.
    pub requests: usize,
    /// Batches admitted.
    pub batches: usize,
    /// Median end-to-end latency, ms (P² estimate).
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms (P² estimate) — the latency
    /// headline the adaptive-vs-static gate compares.
    pub p99_ms: f64,
    /// Fraction of requests missing their SLA deadline.
    pub sla_miss_rate: f64,
    /// Serving makespan, simulated seconds.
    pub makespan_s: f64,
    /// Dynamic dispatch energy (effective task durations × dynamic power),
    /// joules.
    pub dynamic_energy_j: f64,
    /// Total energy at equal offered load: cluster idle power × makespan
    /// plus the dynamic dispatch energy, joules — the energy headline.
    pub total_energy_j: f64,
    /// Re-plans the hysteresis band triggered (0 for non-adaptive runs;
    /// bounded by [`AdaptiveConfig::max_replans`]).
    pub replans: u32,
    /// Effective-rate observations fed to the estimator.
    pub observations: u64,
    /// Offered/completed accounting (the serving tier drains, so offered
    /// equals completed; emitted uniformly with `BENCH_chaos.json`).
    pub robustness: RobustnessStats,
    /// Wall-clock time of the audited steady-state pass, seconds.
    pub wall_seconds: f64,
    /// Heap allocations during the audited steady-state pass (`None` when
    /// no counter was supplied). The contract is 0 with estimation and
    /// drift active: the EWMA bank, the believed cluster and the re-keyed
    /// plans all live on reused scratch once warmed.
    pub steady_state_allocs: Option<u64>,
}

/// The drift trace the experiment injects over the paper cluster: two
/// thermal throttle ramps (long, so a static plan keeps paying them),
/// two background-load bursts and one network-contention window, none on
/// the planning leader. Deterministic in `seed`.
pub fn drift_trace(node_count: usize, horizon: f64, seed: u64) -> DriftModel {
    DriftPlanConfig {
        seed,
        horizon,
        throttles: 2,
        throttle_peak: 4.0,
        background_windows: 2,
        background_factor: 1.6,
        contention_windows: 1,
        contention_factor: 2.0,
    }
    .generate(node_count, LEADER)
    .expect("the paper cluster has driftable nodes")
}

/// The drift configurations the experiment compares, in order:
///
/// * `no-drift` — the trace on the legacy streaming loop (the yardstick);
/// * `no-drift-adaptive` — estimation armed with nothing drifting (the
///   bit-identity gate: observing ratios of 1.0 must change nothing);
/// * `static-drift` — the drift trace with static plans (the degradation
///   baseline the gates require adaptive re-planning to beat);
/// * `adaptive-drift` — the drift trace with the full loop: EWMA rate
///   estimates, hysteresis-bounded re-planning on the believed cluster.
pub fn drift_configs() -> Vec<(&'static str, bool, Option<AdaptiveConfig>)> {
    vec![
        ("no-drift", false, None),
        ("no-drift-adaptive", false, Some(AdaptiveConfig::default())),
        ("static-drift", true, None),
        ("adaptive-drift", true, Some(AdaptiveConfig::default())),
    ]
}

/// Wraps the serving scenario every drift configuration shares: the soak
/// trace's diurnal shape with EDF admission, batching and a bounded
/// admission window. Only the drift model and the adaptive loop vary.
pub fn drift_scenario(
    requests: Vec<hidp_core::ServingRequest>,
    label: &str,
    drift: Option<DriftModel>,
    adaptive: Option<AdaptiveConfig>,
) -> ServingScenario {
    let mut scenario = ServingScenario::new(requests)
        .with_label(format!("drift-{label}"))
        .with_policy(AdmissionPolicy::EarliestDeadline)
        .with_max_batch(8)
        .with_max_inflight(Some(4));
    if let Some(model) = drift {
        scenario = scenario.with_drift(model);
    }
    if let Some(config) = adaptive {
        scenario = scenario.with_adaptive(config);
    }
    scenario
}

/// Runs the drift experiment: the diurnal serving trace through every
/// configuration of [`drift_configs`] on the paper cluster under one seeded
/// drift trace — equal offered load, only the drift exposure and the
/// adaptive loop differ. One warm pass per configuration (cold planning +
/// scratch sizing), then one timed, allocation-audited steady-state pass.
/// Returns the measured points in configuration order.
pub fn drift_points(count: usize, seed: u64, counter: Option<&dyn Fn() -> u64>) -> Vec<DriftPoint> {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = soak_trace(count);
    // Drift lands inside the arrival span, so every ramp and burst can
    // actually intersect live traffic.
    let horizon = requests
        .iter()
        .map(|r| r.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let model = drift_trace(cluster.len(), horizon, seed);
    let mut points = Vec::new();
    for (label, with_drift, adaptive) in drift_configs() {
        let scenario = drift_scenario(
            requests.clone(),
            label,
            with_drift.then(|| model.clone()),
            adaptive,
        );
        let cache = PlanCache::new();
        let mut scratch = ServingScratch::new();
        let warm = scenario
            .run_streaming_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("drift warm pass succeeds");

        let before = counter.map(|f| f());
        let start = Instant::now();
        let summary = scenario
            .run_streaming_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
            .expect("drift steady-state pass succeeds");
        let wall_seconds = start.elapsed().as_secs_f64();
        let steady_state_allocs = counter.map(|f| f() - before.unwrap());

        // Cache traffic differs between the cold and warm pass by design;
        // everything the gates read must agree bit for bit.
        assert_eq!(summary.makespan, warm.makespan, "passes must agree");
        assert_eq!(summary.batches, warm.batches);
        assert_eq!(summary.latency, warm.latency);
        assert_eq!(summary.drift, warm.drift);
        points.push(drift_point(
            label,
            &cluster,
            &summary,
            wall_seconds,
            steady_state_allocs,
        ));
    }
    points
}

fn drift_point(
    label: &str,
    cluster: &Cluster,
    summary: &ServingSummary,
    wall_seconds: f64,
    steady_state_allocs: Option<u64>,
) -> DriftPoint {
    DriftPoint {
        config: label.to_string(),
        requests: summary.requests,
        batches: summary.batches,
        p50_ms: summary.latency.p50 * 1e3,
        p99_ms: summary.latency.p99 * 1e3,
        sla_miss_rate: summary.sla_miss_rate(),
        makespan_s: summary.makespan,
        dynamic_energy_j: summary.drift.energy_j,
        total_energy_j: cluster.idle_power_w() * summary.makespan + summary.drift.energy_j,
        replans: summary.drift.replans,
        observations: summary.drift.observations,
        robustness: summary.robustness,
        wall_seconds,
        steady_state_allocs,
    }
}

/// Renders drift points as an [`ExperimentTable`].
pub fn drift_table(points: &[DriftPoint]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Drift: adaptive re-planning under a seeded throttling/contention trace (equal offered load)",
        "ms / J",
        vec![
            "requests".to_string(),
            "batches".to_string(),
            "p50_ms".to_string(),
            "p99_ms".to_string(),
            "miss_rate".to_string(),
            "makespan_s".to_string(),
            "energy_j".to_string(),
            "replans".to_string(),
            "observations".to_string(),
            "allocs".to_string(),
        ],
    );
    for p in points {
        table.push_row(
            p.config.clone(),
            vec![
                p.requests as f64,
                p.batches as f64,
                p.p50_ms,
                p.p99_ms,
                p.sla_miss_rate,
                p.makespan_s,
                p.total_energy_j,
                p.replans as f64,
                p.observations as f64,
                p.steady_state_allocs.map_or(-1.0, |a| a as f64),
            ],
        );
    }
    table
}

/// The report of the episode-level strategy bandit: a deterministic UCB1
/// choosing between adaptive tunings, one full drift run per episode,
/// reward = negated p99 latency (milliseconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftBanditReport {
    /// Arm labels, in arm-index order.
    pub arms: Vec<String>,
    /// Episodes each arm was played.
    pub pulls: Vec<u64>,
    /// p99 latency each arm measured, ms (deterministic per arm).
    pub p99_ms: Vec<f64>,
    /// Label of the arm the bandit settled on.
    pub best: String,
    /// Total episodes played.
    pub episodes: u32,
}

/// The adaptive tunings the bandit arbitrates between: the default, a
/// faster-reacting estimator, a narrower hysteresis band and a finer
/// quantum.
pub fn drift_bandit_arms() -> Vec<(&'static str, AdaptiveConfig)> {
    let base = AdaptiveConfig::default();
    vec![
        ("default", base),
        (
            "fast-ewma",
            AdaptiveConfig {
                ewma_alpha: 0.5,
                ..base
            },
        ),
        (
            "narrow-band",
            AdaptiveConfig {
                hysteresis: 0.25,
                ..base
            },
        ),
        (
            "fine-quantum",
            AdaptiveConfig {
                quantum: 0.125,
                ..base
            },
        ),
    ]
}

/// Runs the episode-level bandit over [`drift_bandit_arms`]: each episode
/// replays the same seeded drift trace with the selected arm's tuning and
/// feeds the bandit `-p99_ms` as reward. Runs are deterministic, so each
/// arm's reward is a constant — the point is the *selection dynamics*: UCB1
/// must try every arm, then concentrate pulls on the lowest-p99 tuning.
pub fn drift_bandit(count: usize, seed: u64, episodes: u32) -> DriftBanditReport {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = soak_trace(count);
    let horizon = requests
        .iter()
        .map(|r| r.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let model = drift_trace(cluster.len(), horizon, seed);
    let arms = drift_bandit_arms();
    let mut bandit = StrategyBandit::new(arms.len());
    // Per-arm cache + scratch: episodes after an arm's first are warm, so
    // the bandit loop's cost is dominated by first plays.
    let mut state: Vec<(PlanCache, ServingScratch, Option<f64>)> = arms
        .iter()
        .map(|_| (PlanCache::new(), ServingScratch::new(), None))
        .collect();
    for _ in 0..episodes {
        let arm = bandit.select();
        let (label, config) = arms[arm];
        let (cache, scratch, p99) = &mut state[arm];
        let measured = match *p99 {
            // Deterministic replay: the arm's reward never changes, so the
            // first measurement stands for every later pull.
            Some(p) => p,
            None => {
                let summary =
                    drift_scenario(requests.clone(), label, Some(model.clone()), Some(config))
                        .run_streaming_with_cache_in(&strategy, &cluster, LEADER, cache, scratch)
                        .expect("drift bandit episode succeeds");
                let p = summary.latency.p99 * 1e3;
                *p99 = Some(p);
                p
            }
        };
        bandit.update(arm, -measured);
    }
    DriftBanditReport {
        arms: arms.iter().map(|(l, _)| l.to_string()).collect(),
        pulls: (0..arms.len()).map(|a| bandit.pulls(a)).collect(),
        p99_ms: (0..arms.len())
            .map(|a| state[a].2.unwrap_or(f64::NAN))
            .collect(),
        best: arms[bandit.best()].0.to_string(),
        episodes,
    }
}

/// Serialises drift points (and the bandit report) as the
/// `BENCH_drift.json` perf-trajectory document (hand-rolled like
/// [`tables_to_json`]: the build environment has no serde_json).
/// Robustness accounting nests uniformly via [`RobustnessStats::to_json`],
/// the same shape `BENCH_chaos.json` emits.
pub fn drift_json(points: &[DriftPoint], bandit: &DriftBanditReport, seed: u64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"drift\",\n");
    out.push_str(
        "  \"workload\": \"diurnal Mix-5 trace (soak shape), EDF admission, max_batch 8, window 4, paper cluster; seeded drift trace: two thermal throttle ramps (peak 3x), two background-load bursts (1.6x), one network-contention window (2x), leader protected\",\n",
    );
    out.push_str(&format!("  \"drift_seed\": {seed},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"requests\": {}, \"batches\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"sla_miss_rate\": {}, \"makespan_s\": {}, \"dynamic_energy_j\": {}, \"total_energy_j\": {}, \"drift\": {{\"replans\": {}, \"observations\": {}, \"energy_j\": {}}}, \"robustness\": {}, \"wall_seconds\": {}, \"steady_state_allocs\": {}}}{}\n",
            p.config,
            p.requests,
            p.batches,
            p.p50_ms,
            p.p99_ms,
            p.sla_miss_rate,
            p.makespan_s,
            p.dynamic_energy_j,
            p.total_energy_j,
            p.replans,
            p.observations,
            p.dynamic_energy_j,
            p.robustness.to_json(),
            p.wall_seconds,
            p.steady_state_allocs
                .map_or("null".to_string(), |a| a.to_string()),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"bandit\": {\n");
    out.push_str(&format!("    \"episodes\": {},\n", bandit.episodes));
    out.push_str(&format!("    \"best\": \"{}\",\n", bandit.best));
    out.push_str("    \"arms\": [\n");
    for (i, arm) in bandit.arms.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"arm\": \"{}\", \"pulls\": {}, \"p99_ms\": {}}}{}\n",
            arm,
            bandit.pulls[i],
            bandit.p99_ms[i],
            if i + 1 < bandit.arms.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Parallel evaluation: end-to-end requests/s of the sweep engine vs threads
// ---------------------------------------------------------------------------

/// One measured point of the parallel-evaluation experiment: the Mix-5
/// sweep's end-to-end throughput at a given worker-thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParallelEvalPoint {
    /// Worker threads of the [`ParallelSweep`].
    pub threads: usize,
    /// Wall-clock of the whole sweep (plan every request through a cold
    /// shared cache + simulate every stream), best of the measured runs, ms.
    pub wall_ms: f64,
    /// End-to-end throughput: total requests across all jobs over `wall_ms`.
    pub requests_per_second: f64,
    /// `requests_per_second` over the 1-thread point's.
    pub speedup_vs_one_thread: f64,
    /// Whether every job's [`Evaluation`] was bit-identical to the 1-thread
    /// run's (must always be true — the sweep is deterministic).
    pub identical_to_one_thread: bool,
}

/// The full parallel-evaluation report: the workload shape, the host's
/// parallelism (speedups are bounded by it) and one point per thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelEvalReport {
    /// Number of independent Mix-5 stream jobs in the sweep.
    pub jobs: usize,
    /// Requests per job (total requests = `jobs × requests_per_job`).
    pub requests_per_job: usize,
    /// `std::thread::available_parallelism()` of the measuring host — the
    /// hard ceiling on any speedup (1 on a single-core CI runner, where all
    /// multi-thread points degenerate to ~1×).
    pub available_parallelism: usize,
    /// Measured points, one per thread count.
    pub points: Vec<ParallelEvalPoint>,
}

/// The thread counts the parallel-evaluation experiment measures: 1, 2, 4
/// and the host's available parallelism (deduplicated, ascending).
pub fn parallel_eval_thread_counts() -> Vec<usize> {
    let mut counts = vec![
        1,
        2,
        4,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    ];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Builds the Mix-5 sweep the parallel-evaluation experiment runs: `jobs`
/// independent Mix-5 streams of `requests_per_job` requests each, with
/// per-job inter-arrival intervals (so every job is a distinct scenario)
/// and leaders cycling over the cluster's nodes (so planning itself — not
/// just simulation — has concurrent work: 3 models × 5 leaders = 15
/// distinct plan keys).
pub fn parallel_eval_scenarios(jobs: usize, requests_per_job: usize) -> Vec<(Scenario, NodeIndex)> {
    let cluster_len = presets::paper_cluster().len();
    let mix5 = mixes::all_mixes()
        .into_iter()
        .find(|m| m.id == 5)
        .expect("Mix-5 exists");
    (0..jobs)
        .map(|i| {
            let interval = 0.05 + 0.002 * i as f64;
            // The sweep compares whole evaluations and reads throughput —
            // never the trace — so all jobs run at Summary detail.
            let scenario = mix5
                .scenario(interval, requests_per_job)
                .with_label(format!("{}#{i}", mix5.name()))
                .with_trace_detail(TraceDetail::Summary);
            (scenario, NodeIndex(i % cluster_len))
        })
        .collect()
}

/// Measures the parallel evaluation engine end to end: the Mix-5 sweep
/// (see [`parallel_eval_scenarios`]) through [`ParallelSweep`] at each
/// thread count of [`parallel_eval_thread_counts`], each measurement
/// best-of-`runs` against a **cold** shared sharded [`PlanCache`] (so every
/// point pays the same planning work and in-flight deduplication is
/// exercised, not bypassed). Every point's evaluations are compared against
/// the 1-thread run's — the engine guarantees they are bit-identical.
pub fn parallel_eval(jobs: usize, requests_per_job: usize, runs: usize) -> ParallelEvalReport {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let scenarios = parallel_eval_scenarios(jobs, requests_per_job);
    let job_list: Vec<SweepJob<'_>> = scenarios
        .iter()
        .map(|(scenario, leader)| SweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: *leader,
        })
        .collect();
    let total_requests = jobs * requests_per_job;

    let run_once = |threads: usize| -> (f64, Vec<Evaluation>) {
        let cache = PlanCache::new();
        let start = Instant::now();
        let results = ParallelSweep::new(threads).run_scenarios(&job_list, &cache);
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let evaluations = results
            .into_iter()
            .map(|r| r.expect("Mix-5 evaluation succeeds"))
            .collect();
        (elapsed_ms, evaluations)
    };

    let mut reference: Option<Vec<Evaluation>> = None;
    let mut points = Vec::new();
    let mut one_thread_rps = f64::NAN;
    for threads in parallel_eval_thread_counts() {
        let mut best_ms = f64::INFINITY;
        let mut identical = true;
        for _ in 0..runs.max(1) {
            let (elapsed_ms, evaluations) = run_once(threads);
            best_ms = best_ms.min(elapsed_ms);
            match &reference {
                None => reference = Some(evaluations),
                Some(reference) => identical &= evaluations == *reference,
            }
        }
        let requests_per_second = total_requests as f64 / (best_ms / 1e3);
        if threads == 1 {
            one_thread_rps = requests_per_second;
        }
        points.push(ParallelEvalPoint {
            threads,
            wall_ms: best_ms,
            requests_per_second,
            speedup_vs_one_thread: requests_per_second / one_thread_rps,
            identical_to_one_thread: identical,
        });
    }
    ParallelEvalReport {
        jobs,
        requests_per_job,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        points,
    }
}

/// Renders a parallel-evaluation report as an [`ExperimentTable`].
pub fn parallel_eval_table(report: &ParallelEvalReport) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        format!(
            "Parallel evaluation: Mix-5 sweep ({} jobs x {} requests), host parallelism {}",
            report.jobs, report.requests_per_job, report.available_parallelism
        ),
        "ms / req/s / x",
        vec![
            "wall_ms".to_string(),
            "requests_per_s".to_string(),
            "speedup_x".to_string(),
            "identical".to_string(),
        ],
    );
    for p in &report.points {
        table.push_row(
            format!("{} threads", p.threads),
            vec![
                p.wall_ms,
                p.requests_per_second,
                p.speedup_vs_one_thread,
                if p.identical_to_one_thread { 1.0 } else { 0.0 },
            ],
        );
    }
    table
}

/// Serialises a parallel-evaluation report as the
/// `BENCH_parallel_eval.json` perf-trajectory document (hand-rolled like
/// [`tables_to_json`]: the build environment has no serde_json).
pub fn parallel_eval_json(report: &ParallelEvalReport) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"parallel_eval\",\n");
    out.push_str(&format!(
        "  \"workload\": \"Mix-5 sweep: {} independent streams x {} requests, HiDP, leaders cycling over 5 nodes, cold shared sharded PlanCache per measurement\",\n",
        report.jobs, report.requests_per_job
    ));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        report.available_parallelism
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"wall_ms\": {}, \"requests_per_second\": {}, \"speedup_vs_one_thread\": {}, \"identical_to_one_thread\": {}}}{}\n",
            p.threads,
            p.wall_ms,
            p.requests_per_second,
            p.speedup_vs_one_thread,
            p.identical_to_one_thread,
            if i + 1 < report.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Accuracy: partitioned execution is numerically equivalent
// ---------------------------------------------------------------------------

/// The accuracy experiment of §IV-B: partitioned execution must produce the
/// same predictions as whole-model execution. The table reports, per test
/// network, the maximum absolute output difference of model-partitioned and
/// data-partitioned execution versus whole execution, and whether the Top-1
/// predictions agree (1.0 = all agree).
pub fn accuracy_equivalence() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Accuracy: partitioned vs whole execution",
        "max |Δ| and Top-1 agreement",
        vec![
            "model_partition_max_diff".to_string(),
            "data_partition_max_diff".to_string(),
            "top1_agreement".to_string(),
        ],
    );
    let networks: Vec<(&str, hidp_dnn::DnnGraph)> = vec![
        ("tiny_cnn", zoo::small::tiny_cnn(14, 4, 10)),
        ("tiny_resnet", zoo::small::tiny_resnet(14, 4, 10)),
        ("tiny_inception", zoo::small::tiny_inception(14, 4, 10)),
        ("tiny_mobilenet", zoo::small::tiny_mobilenet(14, 4, 10)),
    ];
    // Real tensor execution per network — the heaviest cells in exp_all —
    // fan out on the generic runner (no planning involved).
    let rows = sweep().run(&networks, |_, (_, graph)| {
        let store = WeightStore::generate(graph, 42).expect("weights generate");
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let input =
            Tensor::random(&graph.input_shape().dims(), 1.0, &mut rng).expect("input builds");
        let whole = execute(graph, &input, &store).expect("whole execution succeeds");

        let cut = graph.cut_points()[graph.cut_points().len() / 2];
        let partition = partition_into_blocks(graph, &[cut]).expect("cut point is valid");
        let piped =
            execute_model_partition(graph, &partition, &input, &store).expect("pipeline runs");
        let batched =
            execute_data_partition_batch(graph, 2, &input, &store).expect("data partition runs");

        let model_diff = whole.max_abs_diff(&piped).expect("same shape") as f64;
        let data_diff = whole.max_abs_diff(&batched).expect("same shape") as f64;
        let agree = whole.argmax_rows().expect("rank 2") == piped.argmax_rows().expect("rank 2")
            && whole.argmax_rows().expect("rank 2") == batched.argmax_rows().expect("rank 2");
        vec![model_diff, data_diff, if agree { 1.0 } else { 0.0 }]
    });
    for ((name, _), values) in networks.iter().zip(rows) {
        table.push_row(*name, values);
    }
    table
}

// ---------------------------------------------------------------------------
// DSE overhead (§III, middleware): DP exploration time per request
// ---------------------------------------------------------------------------

/// Measures the wall-clock overhead of the DP-based exploration (global +
/// local) per model, the quantity the paper reports as ≈15 ms on average.
///
/// Deliberately **not** fanned out on [`ParallelSweep`]: this experiment
/// *times* each exploration, and co-scheduling the cells would let them
/// steal cycles from each other and inflate the numbers.
pub fn dse_overhead() -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let mut table = ExperimentTable::new(
        "DSE overhead: DP exploration time per request",
        "ms",
        vec![
            "global_ms".to_string(),
            "local_ms".to_string(),
            "total_ms".to_string(),
        ],
    );
    for model in WorkloadModel::ALL {
        let graph = model.graph(1);
        let system = SystemModel::new(&graph, LEADER);
        let segments = chain_segments(&graph);
        let workload = workload_summary(&graph);
        let resources = system.global_resources(&cluster);

        let start = Instant::now();
        let agent = DseAgent::new();
        let decision = agent
            .explore(&segments, &resources, workload, resources.len())
            .expect("global exploration succeeds");
        let global_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let local = LocalPartitioner::hidp();
        let _ = local
            .partition(
                &system,
                &cluster,
                LEADER,
                workload.flops,
                workload.input_bytes,
                workload.output_bytes,
                workload.sync_bytes / 4,
            )
            .expect("local exploration succeeds");
        let local_ms = start.elapsed().as_secs_f64() * 1e3;
        let _ = decision;
        table.push_row(
            model.name(),
            vec![global_ms, local_ms, global_ms + local_ms],
        );
    }
    table
}

// ---------------------------------------------------------------------------
// Ablation: which parts of HiDP matter
// ---------------------------------------------------------------------------

/// Ablation study over the design choices DESIGN.md calls out: full HiDP,
/// HiDP without the local tier, and HiDP forced to model-only / data-only
/// global partitioning. Values are latencies in ms per workload.
pub fn ablation_variants() -> Vec<(String, HidpStrategy)> {
    vec![
        ("HiDP (full)".to_string(), HidpStrategy::new()),
        (
            "no local tier".to_string(),
            HidpStrategy::without_local_tier(),
        ),
        (
            "model-only".to_string(),
            HidpStrategy {
                global: GlobalPartitioner {
                    dse: DseAgent::with_policy(DsePolicy::ModelOnly),
                    ..GlobalPartitioner::hidp()
                },
                local: LocalPartitioner::hidp(),
            },
        ),
        (
            "data-only".to_string(),
            HidpStrategy {
                global: GlobalPartitioner {
                    dse: DseAgent::with_policy(DsePolicy::DataOnly),
                    ..GlobalPartitioner::hidp()
                },
                local: LocalPartitioner::hidp(),
            },
        ),
    ]
}

/// Runs the ablation study: per-workload latency of each HiDP variant.
/// The variant × model grid fans out on [`ParallelSweep`]; the variants
/// share the "HiDP" display name but their `cache_config` discriminators
/// keep the shared cache's keys apart.
pub fn ablation() -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let variants = ablation_variants();
    let mut table = ExperimentTable::new(
        "Ablation: HiDP design choices",
        "ms",
        variants.iter().map(|(name, _)| name.clone()).collect(),
    );
    // Latency only — Summary detail.
    let scenarios: Vec<Scenario> = WorkloadModel::ALL
        .iter()
        .map(|m| Scenario::single(m.graph(1)).with_trace_detail(TraceDetail::Summary))
        .collect();
    let (cluster_ref, variants_ref) = (&cluster, &variants);
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .flat_map(|scenario| {
            variants_ref.iter().map(move |(_, strategy)| SweepJob {
                scenario,
                strategy,
                cluster: cluster_ref,
                leader: LEADER,
            })
        })
        .collect();
    let evaluations = sweep_evaluations(&jobs);
    for (row, model) in WorkloadModel::ALL.iter().enumerate() {
        let values: Vec<f64> = evaluations[row * variants.len()..(row + 1) * variants.len()]
            .iter()
            .map(|e| e.latency() * 1e3)
            .collect();
        table.push_row(model.name(), values);
    }
    table
}

// ---------------------------------------------------------------------------
// Table II: the evaluation platform
// ---------------------------------------------------------------------------

/// Table II: the evaluation platform (device inventory with modelled
/// aggregate throughput and idle power).
pub fn table2_platform() -> ExperimentTable {
    let cluster = presets::paper_cluster();
    let mut table = ExperimentTable::new(
        "Table II: evaluation platform",
        "processors / GFLOP/s / W / GB",
        vec![
            "processors".to_string(),
            "aggregate_gflops".to_string(),
            "idle_power_w".to_string(),
            "dram_gb".to_string(),
        ],
    );
    for node in cluster.nodes() {
        table.push_row(
            node.name.clone(),
            vec![
                node.processor_count() as f64,
                node.aggregate_rate(1.0) / 1e9,
                node.idle_power_w(),
                node.dram_gb,
            ],
        );
    }
    table
}

/// Serialises a set of tables as a JSON document (used to regenerate
/// EXPERIMENTS.md). Hand-rolled: the table shape is fixed and the build
/// environment has no serde_json, so the emitter lives here.
pub fn tables_to_json(tables: &[ExperimentTable]) -> String {
    fn json_string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    fn json_number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            // JSON has no NaN/Inf; null is the conventional stand-in.
            "null".to_string()
        }
    }
    let mut out = String::from("[\n");
    for (t_idx, table) in tables.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"title\": {},\n", json_string(&table.title)));
        out.push_str(&format!("    \"unit\": {},\n", json_string(&table.unit)));
        let columns: Vec<String> = table.columns.iter().map(|c| json_string(c)).collect();
        out.push_str(&format!("    \"columns\": [{}],\n", columns.join(", ")));
        out.push_str("    \"rows\": [\n");
        for (r_idx, (label, values)) in table.rows.iter().enumerate() {
            let cells: Vec<String> = values.iter().map(|v| json_number(*v)).collect();
            out.push_str(&format!(
                "      [{}, [{}]]{}\n",
                json_string(label),
                cells.join(", "),
                if r_idx + 1 < table.rows.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("    ]\n");
        out.push_str(&format!(
            "  }}{}\n",
            if t_idx + 1 < tables.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip_and_markdown() {
        let mut t = ExperimentTable::new("demo", "ms", vec!["a".into(), "b".into()]);
        t.push_row("r1", vec![1.0, 250.0]);
        assert_eq!(t.value("r1", "b"), Some(250.0));
        assert_eq!(t.value("r1", "missing"), None);
        assert_eq!(t.value("missing", "a"), None);
        let md = t.to_markdown();
        assert!(md.contains("| r1 | 1.00 | 250 |"));
        let json = tables_to_json(&[t]);
        assert!(json.contains("demo"));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_is_rejected() {
        let mut t = ExperimentTable::new("demo", "ms", vec!["a".into()]);
        t.push_row("r1", vec![1.0, 2.0]);
    }

    #[test]
    fn fig1_default_config_is_never_the_best() {
        // The whole point of Fig. 1: some CPU+GPU split beats P1 for every
        // model on the TX2.
        let table = fig1_partitioning_configs();
        for (model, values) in &table.rows {
            let best = values.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(best < 1.0, "{model}: no configuration beat P1");
            assert!((values[0] - 1.0).abs() < 1e-9, "{model}: P1 must be 1.0");
        }
    }

    #[test]
    fn fig1_efficientnet_prefers_balanced_splits() {
        // EfficientNet's depthwise-heavy layers make the GPU less dominant,
        // so a 50/50 split (P9) beats the GPU-heavy P2 configuration.
        let table = fig1_partitioning_configs();
        let p9 = table.value("efficientnet_b0", "P9").unwrap();
        let p2 = table.value("efficientnet_b0", "P2").unwrap();
        assert!(p9 < p2);
    }

    #[test]
    fn fig5_hidp_wins_latency_and_energy() {
        let latency = fig5_latency();
        let energy = fig5_energy();
        for table in [&latency, &energy] {
            for (model, values) in &table.rows {
                let hidp = values[0];
                for (i, v) in values.iter().enumerate().skip(1) {
                    assert!(
                        hidp <= v * 1.01,
                        "{model}: HiDP {hidp:.2} vs {} {v:.2} in {}",
                        table.columns[i],
                        table.title
                    );
                }
            }
        }
    }

    #[test]
    fn fig8_latency_decreases_with_more_nodes_for_hidp() {
        let table = fig8_node_scaling();
        let hidp: Vec<f64> = table.rows.iter().map(|(_, v)| v[0]).collect();
        assert!(hidp.last().unwrap() <= hidp.first().unwrap());
    }

    #[test]
    fn accuracy_table_shows_equivalence() {
        let table = accuracy_equivalence();
        for (name, values) in &table.rows {
            assert!(values[0] < 1e-3, "{name}: model partition diverged");
            assert!(values[1] < 1e-3, "{name}: data partition diverged");
            assert_eq!(values[2], 1.0, "{name}: Top-1 predictions changed");
        }
    }

    #[test]
    fn ablation_full_hidp_is_never_worse() {
        let table = ablation();
        for (model, values) in &table.rows {
            let full = values[0];
            for v in &values[1..] {
                assert!(
                    full <= v * 1.01,
                    "{model}: full HiDP slower than an ablation"
                );
            }
        }
    }

    #[test]
    fn table2_lists_five_devices() {
        let table = table2_platform();
        assert_eq!(table.rows.len(), 5);
    }
}
