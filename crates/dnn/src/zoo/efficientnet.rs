//! EfficientNet-B0 (Tan & Le, 2019): mobile inverted-bottleneck (MBConv)
//! blocks with depthwise convolutions and swish activations.
//!
//! Squeeze-and-excitation blocks are omitted (they contribute <1% of the
//! network's flops and do not change partitioning decisions); the omission is
//! recorded in DESIGN.md. The heavy use of depthwise convolutions is what
//! makes this network comparatively CPU-friendly — the effect behind the P9
//! configuration winning for EfficientNet in Fig. 1 of the paper.

use crate::graph::{DnnGraph, GraphBuilder, NodeId};
use crate::layer::{LayerKind, Shape, Window};
use hidp_tensor::ops::Activation;

struct EffNetBuilder {
    b: GraphBuilder,
}

impl EffNetBuilder {
    fn conv_bn_swish(
        &mut self,
        name: &str,
        prev: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
    ) -> NodeId {
        let conv = self.b.layer(
            format!("{name}_conv"),
            LayerKind::Conv {
                out_channels,
                window: Window::square(kernel, stride, kernel / 2),
                activation: Activation::Linear,
            },
            &[prev],
        );
        let bn = self
            .b
            .layer(format!("{name}_bn"), LayerKind::BatchNorm, &[conv]);
        if activation == Activation::Linear {
            bn
        } else {
            self.b.layer(
                format!("{name}_act"),
                LayerKind::Activation { activation },
                &[bn],
            )
        }
    }

    fn depthwise_bn_swish(
        &mut self,
        name: &str,
        prev: NodeId,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        let dw = self.b.layer(
            format!("{name}_dw"),
            LayerKind::DepthwiseConv {
                window: Window::square(kernel, stride, kernel / 2),
                activation: Activation::Linear,
            },
            &[prev],
        );
        let bn = self
            .b
            .layer(format!("{name}_dwbn"), LayerKind::BatchNorm, &[dw]);
        self.b.layer(
            format!("{name}_dwact"),
            LayerKind::Activation {
                activation: Activation::Swish,
            },
            &[bn],
        )
    }

    /// MBConv block. `expand` is the expansion ratio (1 or 6 for B0).
    #[allow(clippy::too_many_arguments)]
    fn mbconv(
        &mut self,
        name: &str,
        prev: NodeId,
        in_channels: usize,
        out_channels: usize,
        expand: usize,
        kernel: usize,
        stride: usize,
    ) -> NodeId {
        let expanded = in_channels * expand;
        let mut x = prev;
        if expand != 1 {
            x = self.conv_bn_swish(
                &format!("{name}_expand"),
                x,
                expanded,
                1,
                1,
                Activation::Swish,
            );
        }
        x = self.depthwise_bn_swish(name, x, kernel, stride);
        let projected = self.conv_bn_swish(
            &format!("{name}_project"),
            x,
            out_channels,
            1,
            1,
            Activation::Linear,
        );
        if stride == 1 && in_channels == out_channels {
            self.b
                .layer(format!("{name}_add"), LayerKind::Add, &[prev, projected])
        } else {
            projected
        }
    }
}

/// Stage description: (expansion, output channels, repeats, kernel, stride).
const B0_STAGES: [(usize, usize, usize, usize, usize); 7] = [
    (1, 16, 1, 3, 1),
    (6, 24, 2, 3, 2),
    (6, 40, 2, 5, 2),
    (6, 80, 3, 3, 2),
    (6, 112, 3, 5, 1),
    (6, 192, 4, 5, 2),
    (6, 320, 1, 3, 1),
];

/// Builds EfficientNet-B0 for `resolution`×`resolution` RGB inputs (the paper
/// uses 224). The resolution must be divisible by 32.
pub fn efficientnet_b0(resolution: usize, batch: usize) -> DnnGraph {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "EfficientNet-B0 requires a resolution divisible by 32, got {resolution}"
    );
    let mut eb = EffNetBuilder {
        b: GraphBuilder::new("efficientnet_b0"),
    };
    let input = eb.b.input(Shape::map(batch, 3, resolution, resolution));
    let mut prev = eb.conv_bn_swish("stem", input, 32, 3, 2, Activation::Swish);
    let mut in_channels = 32usize;

    for (stage_idx, (expand, out_channels, repeats, kernel, stride)) in
        B0_STAGES.into_iter().enumerate()
    {
        for r in 0..repeats {
            let s = if r == 0 { stride } else { 1 };
            prev = eb.mbconv(
                &format!("mb{}_{}", stage_idx + 1, r + 1),
                prev,
                in_channels,
                out_channels,
                expand,
                kernel,
                s,
            );
            in_channels = out_channels;
        }
    }

    prev = eb.conv_bn_swish("head", prev, 1280, 1, 1, Activation::Swish);
    let gap = eb.b.layer("gap", LayerKind::GlobalAvgPool, &[prev]);
    let flat = eb.b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = eb.b.layer(
        "fc",
        LayerKind::Dense {
            units: 1000,
            activation: Activation::Linear,
        },
        &[flat],
    );
    eb.b.layer("softmax", LayerKind::Softmax, &[fc]);
    eb.b.build()
        .expect("efficientnet_b0 graph is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_of(g: &DnnGraph, name: &str) -> Shape {
        let n = g.nodes().iter().find(|n| n.name == name).unwrap();
        g.cost(n.id).unwrap().output_shape.clone()
    }

    #[test]
    fn stage_shapes_match_published_architecture() {
        let g = efficientnet_b0(224, 1);
        assert_eq!(shape_of(&g, "stem_act"), Shape::map(1, 32, 112, 112));
        assert_eq!(
            shape_of(&g, "mb1_1_project_bn"),
            Shape::map(1, 16, 112, 112)
        );
        assert_eq!(shape_of(&g, "mb2_2_add"), Shape::map(1, 24, 56, 56));
        assert_eq!(shape_of(&g, "mb4_1_project_bn"), Shape::map(1, 80, 14, 14));
        assert_eq!(shape_of(&g, "mb7_1_project_bn"), Shape::map(1, 320, 7, 7));
        assert_eq!(shape_of(&g, "head_act"), Shape::map(1, 1280, 7, 7));
    }

    #[test]
    fn block_count_matches_b0() {
        let g = efficientnet_b0(224, 1);
        let dw_layers = g
            .nodes()
            .iter()
            .filter(|n| n.kind.category() == "dwconv")
            .count();
        // One depthwise conv per MBConv block: 1+2+2+3+3+4+1 = 16.
        assert_eq!(dw_layers, 16);
    }

    #[test]
    fn efficientnet_is_much_cheaper_than_vgg() {
        let eff = efficientnet_b0(224, 1);
        let vgg = super::super::vgg19(224, 1);
        assert!(vgg.total_flops() > 20 * eff.total_flops());
    }

    #[test]
    fn depthwise_flops_are_a_large_share() {
        // Sanity check for the CPU-friendliness argument: depthwise +
        // elementwise layers make up a noticeable share of EfficientNet's
        // work, unlike VGG.
        let g = efficientnet_b0(224, 1);
        let dw_flops: u64 = g
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.kind.category(),
                    "dwconv" | "batchnorm" | "activation" | "add"
                )
            })
            .map(|n| g.cost(n.id).unwrap().flops)
            .sum();
        let share = dw_flops as f64 / g.total_flops() as f64;
        assert!(share > 0.10, "depthwise/elementwise share was {share:.3}");
    }
}
