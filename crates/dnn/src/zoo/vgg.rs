//! VGG-19 (Simonyan & Zisserman, 2015), configuration E.
//!
//! 16 convolutional layers + 3 fully connected layers; the densest and most
//! GPU-friendly of the four workloads, and the one with by far the largest
//! parameter footprint (≈144 M, dominated by the first FC layer).

use crate::graph::{DnnGraph, GraphBuilder, NodeId};
use crate::layer::{LayerKind, Shape, Window};
use hidp_tensor::ops::Activation;

fn conv3(b: &mut GraphBuilder, name: &str, prev: NodeId, out_channels: usize) -> NodeId {
    b.layer(
        name,
        LayerKind::Conv {
            out_channels,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[prev],
    )
}

fn max_pool(b: &mut GraphBuilder, name: &str, prev: NodeId) -> NodeId {
    b.layer(
        name,
        LayerKind::MaxPool {
            window: Window::square(2, 2, 0),
        },
        &[prev],
    )
}

/// Builds VGG-19 for `resolution`×`resolution` RGB inputs (the paper uses 224).
///
/// The resolution must be divisible by 32 so the five pooling stages produce
/// integral feature-map sizes; 224 → a 7×7×512 map before the classifier.
pub fn vgg19(resolution: usize, batch: usize) -> DnnGraph {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "VGG-19 requires a resolution divisible by 32, got {resolution}"
    );
    let mut b = GraphBuilder::new("vgg19");
    let mut prev = b.input(Shape::map(batch, 3, resolution, resolution));

    // (stage, channels, conv count) per configuration E.
    let stages: [(usize, usize, usize); 5] = [
        (1, 64, 2),
        (2, 128, 2),
        (3, 256, 4),
        (4, 512, 4),
        (5, 512, 4),
    ];
    for (stage, channels, convs) in stages {
        for i in 1..=convs {
            prev = conv3(&mut b, &format!("conv{stage}_{i}"), prev, channels);
        }
        prev = max_pool(&mut b, &format!("pool{stage}"), prev);
    }

    let flat = b.layer("flatten", LayerKind::Flatten, &[prev]);
    let fc6 = b.layer(
        "fc6",
        LayerKind::Dense {
            units: 4096,
            activation: Activation::Relu,
        },
        &[flat],
    );
    let fc7 = b.layer(
        "fc7",
        LayerKind::Dense {
            units: 4096,
            activation: Activation::Relu,
        },
        &[fc6],
    );
    let fc8 = b.layer(
        "fc8",
        LayerKind::Dense {
            units: 1000,
            activation: Activation::Linear,
        },
        &[fc7],
    );
    b.layer("softmax", LayerKind::Softmax, &[fc8]);

    b.build().expect("vgg19 graph is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_counts_match_configuration_e() {
        let g = vgg19(224, 1);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| n.kind.category() == "conv")
            .count();
        let dense = g
            .nodes()
            .iter()
            .filter(|n| n.kind.category() == "dense")
            .count();
        assert_eq!(convs, 16);
        assert_eq!(dense, 3);
    }

    #[test]
    fn feature_map_before_classifier_is_7x7x512() {
        let g = vgg19(224, 1);
        let pool5 = g
            .nodes()
            .iter()
            .find(|n| n.name == "pool5")
            .expect("pool5 exists");
        assert_eq!(
            g.cost(pool5.id).unwrap().output_shape,
            Shape::map(1, 512, 7, 7)
        );
    }

    #[test]
    fn fc6_dominates_parameters() {
        let g = vgg19(224, 1);
        let fc6 = g.nodes().iter().find(|n| n.name == "fc6").unwrap();
        let fc6_params = g.cost(fc6.id).unwrap().parameter_bytes / 4;
        assert_eq!(fc6_params, 7 * 7 * 512 * 4096 + 4096);
        assert!(fc6_params as f64 > 0.6 * g.total_parameters() as f64);
    }

    #[test]
    fn pure_chain_has_cut_point_after_every_layer() {
        let g = vgg19(224, 1);
        assert_eq!(g.cut_points().len(), g.len() - 1);
    }

    #[test]
    #[should_panic(expected = "divisible by 32")]
    fn invalid_resolution_panics() {
        let _ = vgg19(100, 1);
    }
}
