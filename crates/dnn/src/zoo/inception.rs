//! Inception-V3 (Szegedy et al., 2016) for 299×299 inputs.
//!
//! Stem → 3×InceptionA → ReductionA → 4×InceptionB → ReductionB →
//! 2×InceptionC → global average pooling → 1000-way classifier. Auxiliary
//! classifiers (training-only) are omitted.

use crate::graph::{DnnGraph, GraphBuilder, NodeId};
use crate::layer::{LayerKind, Shape, Window};
use hidp_tensor::ops::Activation;

struct InceptionBuilder {
    b: GraphBuilder,
}

impl InceptionBuilder {
    /// conv + batch-norm + ReLU with an arbitrary (possibly non-square) kernel.
    fn conv_bn(
        &mut self,
        name: &str,
        prev: NodeId,
        out_channels: usize,
        kernel: (usize, usize),
        stride: usize,
        padding: (usize, usize),
    ) -> NodeId {
        let conv = self.b.layer(
            format!("{name}_conv"),
            LayerKind::Conv {
                out_channels,
                window: Window {
                    kernel,
                    stride: (stride, stride),
                    padding,
                },
                activation: Activation::Linear,
            },
            &[prev],
        );
        let bn = self
            .b
            .layer(format!("{name}_bn"), LayerKind::BatchNorm, &[conv]);
        self.b.layer(
            format!("{name}_relu"),
            LayerKind::Activation {
                activation: Activation::Relu,
            },
            &[bn],
        )
    }

    fn sq(&mut self, name: &str, prev: NodeId, out: usize, k: usize, s: usize, p: usize) -> NodeId {
        self.conv_bn(name, prev, out, (k, k), s, (p, p))
    }

    fn avg_pool3(&mut self, name: &str, prev: NodeId) -> NodeId {
        self.b.layer(
            name,
            LayerKind::AvgPool {
                window: Window::square(3, 1, 1),
            },
            &[prev],
        )
    }

    /// Inception-A: 1×1 / 5×5 / double-3×3 / pool branches, 35×35 maps.
    fn inception_a(&mut self, name: &str, prev: NodeId, pool_features: usize) -> NodeId {
        let b1 = self.sq(&format!("{name}_1x1"), prev, 64, 1, 1, 0);

        let b2a = self.sq(&format!("{name}_5x5a"), prev, 48, 1, 1, 0);
        let b2 = self.sq(&format!("{name}_5x5b"), b2a, 64, 5, 1, 2);

        let b3a = self.sq(&format!("{name}_3x3a"), prev, 64, 1, 1, 0);
        let b3b = self.sq(&format!("{name}_3x3b"), b3a, 96, 3, 1, 1);
        let b3 = self.sq(&format!("{name}_3x3c"), b3b, 96, 3, 1, 1);

        let pool = self.avg_pool3(&format!("{name}_pool"), prev);
        let b4 = self.sq(&format!("{name}_poolproj"), pool, pool_features, 1, 1, 0);

        self.b.layer(
            format!("{name}_concat"),
            LayerKind::Concat,
            &[b1, b2, b3, b4],
        )
    }

    /// Reduction-A: stride-2 3×3 / double-3×3 / max-pool branches, 35→17.
    fn reduction_a(&mut self, name: &str, prev: NodeId) -> NodeId {
        let b1 = self.sq(&format!("{name}_3x3"), prev, 384, 3, 2, 0);

        let b2a = self.sq(&format!("{name}_d3x3a"), prev, 64, 1, 1, 0);
        let b2b = self.sq(&format!("{name}_d3x3b"), b2a, 96, 3, 1, 1);
        let b2 = self.sq(&format!("{name}_d3x3c"), b2b, 96, 3, 2, 0);

        let pool = self.b.layer(
            format!("{name}_pool"),
            LayerKind::MaxPool {
                window: Window::square(3, 2, 0),
            },
            &[prev],
        );
        self.b
            .layer(format!("{name}_concat"), LayerKind::Concat, &[b1, b2, pool])
    }

    /// Inception-B: factorised 7×7 convolutions, 17×17 maps.
    fn inception_b(&mut self, name: &str, prev: NodeId, c7: usize) -> NodeId {
        let b1 = self.sq(&format!("{name}_1x1"), prev, 192, 1, 1, 0);

        let b2a = self.sq(&format!("{name}_7a"), prev, c7, 1, 1, 0);
        let b2b = self.conv_bn(&format!("{name}_7b"), b2a, c7, (1, 7), 1, (0, 3));
        let b2 = self.conv_bn(&format!("{name}_7c"), b2b, 192, (7, 1), 1, (3, 0));

        let b3a = self.sq(&format!("{name}_d7a"), prev, c7, 1, 1, 0);
        let b3b = self.conv_bn(&format!("{name}_d7b"), b3a, c7, (7, 1), 1, (3, 0));
        let b3c = self.conv_bn(&format!("{name}_d7c"), b3b, c7, (1, 7), 1, (0, 3));
        let b3d = self.conv_bn(&format!("{name}_d7d"), b3c, c7, (7, 1), 1, (3, 0));
        let b3 = self.conv_bn(&format!("{name}_d7e"), b3d, 192, (1, 7), 1, (0, 3));

        let pool = self.avg_pool3(&format!("{name}_pool"), prev);
        let b4 = self.sq(&format!("{name}_poolproj"), pool, 192, 1, 1, 0);

        self.b.layer(
            format!("{name}_concat"),
            LayerKind::Concat,
            &[b1, b2, b3, b4],
        )
    }

    /// Reduction-B: 17→8.
    fn reduction_b(&mut self, name: &str, prev: NodeId) -> NodeId {
        let b1a = self.sq(&format!("{name}_3x3a"), prev, 192, 1, 1, 0);
        let b1 = self.sq(&format!("{name}_3x3b"), b1a, 320, 3, 2, 0);

        let b2a = self.sq(&format!("{name}_7x7a"), prev, 192, 1, 1, 0);
        let b2b = self.conv_bn(&format!("{name}_7x7b"), b2a, 192, (1, 7), 1, (0, 3));
        let b2c = self.conv_bn(&format!("{name}_7x7c"), b2b, 192, (7, 1), 1, (3, 0));
        let b2 = self.sq(&format!("{name}_7x7d"), b2c, 192, 3, 2, 0);

        let pool = self.b.layer(
            format!("{name}_pool"),
            LayerKind::MaxPool {
                window: Window::square(3, 2, 0),
            },
            &[prev],
        );
        self.b
            .layer(format!("{name}_concat"), LayerKind::Concat, &[b1, b2, pool])
    }

    /// Inception-C: expanded filter-bank modules, 8×8 maps.
    fn inception_c(&mut self, name: &str, prev: NodeId) -> NodeId {
        let b1 = self.sq(&format!("{name}_1x1"), prev, 320, 1, 1, 0);

        let b2a = self.sq(&format!("{name}_3a"), prev, 384, 1, 1, 0);
        let b2l = self.conv_bn(&format!("{name}_3b1"), b2a, 384, (1, 3), 1, (0, 1));
        let b2r = self.conv_bn(&format!("{name}_3b2"), b2a, 384, (3, 1), 1, (1, 0));

        let b3a = self.sq(&format!("{name}_d3a"), prev, 448, 1, 1, 0);
        let b3b = self.sq(&format!("{name}_d3b"), b3a, 384, 3, 1, 1);
        let b3l = self.conv_bn(&format!("{name}_d3c1"), b3b, 384, (1, 3), 1, (0, 1));
        let b3r = self.conv_bn(&format!("{name}_d3c2"), b3b, 384, (3, 1), 1, (1, 0));

        let pool = self.avg_pool3(&format!("{name}_pool"), prev);
        let b4 = self.sq(&format!("{name}_poolproj"), pool, 192, 1, 1, 0);

        self.b.layer(
            format!("{name}_concat"),
            LayerKind::Concat,
            &[b1, b2l, b2r, b3l, b3r, b4],
        )
    }
}

/// Builds Inception-V3 for `resolution`×`resolution` RGB inputs (the paper
/// uses 299). Resolutions below 75 are rejected because the stem would
/// collapse the feature map.
pub fn inception_v3(resolution: usize, batch: usize) -> DnnGraph {
    assert!(
        resolution >= 75,
        "Inception-V3 requires a resolution of at least 75, got {resolution}"
    );
    let mut ib = InceptionBuilder {
        b: GraphBuilder::new("inception_v3"),
    };
    let input = ib.b.input(Shape::map(batch, 3, resolution, resolution));

    // Stem: 299 -> 35x35x192.
    let s1 = ib.sq("stem1", input, 32, 3, 2, 0);
    let s2 = ib.sq("stem2", s1, 32, 3, 1, 0);
    let s3 = ib.sq("stem3", s2, 64, 3, 1, 1);
    let p1 = ib.b.layer(
        "stem_pool1",
        LayerKind::MaxPool {
            window: Window::square(3, 2, 0),
        },
        &[s3],
    );
    let s4 = ib.sq("stem4", p1, 80, 1, 1, 0);
    let s5 = ib.sq("stem5", s4, 192, 3, 1, 0);
    let p2 = ib.b.layer(
        "stem_pool2",
        LayerKind::MaxPool {
            window: Window::square(3, 2, 0),
        },
        &[s5],
    );

    // 3 × Inception-A.
    let a1 = ib.inception_a("mixed5b", p2, 32);
    let a2 = ib.inception_a("mixed5c", a1, 64);
    let a3 = ib.inception_a("mixed5d", a2, 64);
    // Reduction-A.
    let ra = ib.reduction_a("mixed6a", a3);
    // 4 × Inception-B.
    let b1 = ib.inception_b("mixed6b", ra, 128);
    let b2 = ib.inception_b("mixed6c", b1, 160);
    let b3 = ib.inception_b("mixed6d", b2, 160);
    let b4 = ib.inception_b("mixed6e", b3, 192);
    // Reduction-B.
    let rb = ib.reduction_b("mixed7a", b4);
    // 2 × Inception-C.
    let c1 = ib.inception_c("mixed7b", rb);
    let c2 = ib.inception_c("mixed7c", c1);

    let gap = ib.b.layer("gap", LayerKind::GlobalAvgPool, &[c2]);
    let flat = ib.b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = ib.b.layer(
        "fc",
        LayerKind::Dense {
            units: 1000,
            activation: Activation::Linear,
        },
        &[flat],
    );
    ib.b.layer("softmax", LayerKind::Softmax, &[fc]);
    ib.b.build()
        .expect("inception_v3 graph is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_of(g: &DnnGraph, name: &str) -> Shape {
        let n = g.nodes().iter().find(|n| n.name == name).unwrap();
        g.cost(n.id).unwrap().output_shape.clone()
    }

    #[test]
    fn stage_shapes_match_published_architecture() {
        let g = inception_v3(299, 1);
        assert_eq!(shape_of(&g, "stem_pool2"), Shape::map(1, 192, 35, 35));
        assert_eq!(shape_of(&g, "mixed5b_concat"), Shape::map(1, 256, 35, 35));
        assert_eq!(shape_of(&g, "mixed5d_concat"), Shape::map(1, 288, 35, 35));
        assert_eq!(shape_of(&g, "mixed6a_concat"), Shape::map(1, 768, 17, 17));
        assert_eq!(shape_of(&g, "mixed6e_concat"), Shape::map(1, 768, 17, 17));
        assert_eq!(shape_of(&g, "mixed7a_concat"), Shape::map(1, 1280, 8, 8));
        assert_eq!(shape_of(&g, "mixed7c_concat"), Shape::map(1, 2048, 8, 8));
    }

    #[test]
    fn module_concats_are_cut_points() {
        let g = inception_v3(299, 1);
        let cut_names: Vec<&str> = g
            .cut_points()
            .iter()
            .map(|id| g.node(*id).unwrap().name.as_str())
            .collect();
        for module in ["mixed5b", "mixed6a", "mixed6e", "mixed7c"] {
            let concat = format!("{module}_concat");
            assert!(
                cut_names.contains(&concat.as_str()),
                "{concat} should be a cut point"
            );
        }
        // Branch-internal layers must not be cut points.
        assert!(!cut_names.contains(&"mixed5b_3x3b_relu"));
    }

    #[test]
    #[should_panic(expected = "at least 75")]
    fn tiny_resolution_is_rejected() {
        let _ = inception_v3(64, 1);
    }
}
