//! Model zoo: analytical graphs of the four DNN workloads evaluated in the
//! HiDP paper (ResNet-152, VGG-19, Inception-V3, EfficientNet-B0) plus small
//! networks used by execution and equivalence tests.
//!
//! The graphs are faithful at the block level (layer counts, channel widths,
//! strides follow the published architectures) so that per-layer flops,
//! parameter sizes and activation sizes — the only quantities the HiDP
//! decision problem consumes — are realistic. Squeeze-and-excitation blocks
//! in EfficientNet are omitted (they contribute <1% of flops); this is
//! recorded in DESIGN.md.

mod efficientnet;
mod inception;
mod resnet;
pub mod small;
mod vgg;

pub use efficientnet::efficientnet_b0;
pub use inception::inception_v3;
pub use resnet::resnet152;
pub use vgg::vgg19;

use crate::DnnGraph;
use serde::{Deserialize, Serialize};

/// The four DNN workloads used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadModel {
    /// EfficientNet-B0, 224×224 input.
    EfficientNetB0,
    /// Inception-V3, 299×299 input.
    InceptionV3,
    /// ResNet-152, 224×224 input.
    ResNet152,
    /// VGG-19, 224×224 input.
    Vgg19,
}

impl WorkloadModel {
    /// All four models in the order the paper lists them.
    pub const ALL: [WorkloadModel; 4] = [
        WorkloadModel::EfficientNetB0,
        WorkloadModel::InceptionV3,
        WorkloadModel::ResNet152,
        WorkloadModel::Vgg19,
    ];

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadModel::EfficientNetB0 => "efficientnet_b0",
            WorkloadModel::InceptionV3 => "inception_v3",
            WorkloadModel::ResNet152 => "resnet152",
            WorkloadModel::Vgg19 => "vgg19",
        }
    }

    /// Input image resolution used by the paper (224 or 299).
    pub fn input_resolution(&self) -> usize {
        match self {
            WorkloadModel::InceptionV3 => 299,
            _ => 224,
        }
    }

    /// Builds the analytical graph for this model at the paper's resolution.
    pub fn graph(&self, batch: usize) -> DnnGraph {
        match self {
            WorkloadModel::EfficientNetB0 => efficientnet_b0(self.input_resolution(), batch),
            WorkloadModel::InceptionV3 => inception_v3(self.input_resolution(), batch),
            WorkloadModel::ResNet152 => resnet152(self.input_resolution(), batch),
            WorkloadModel::Vgg19 => vgg19(self.input_resolution(), batch),
        }
    }
}

impl std::fmt::Display for WorkloadModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for WorkloadModel {
    type Err = crate::DnnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "efficientnet_b0" | "efficientnet" | "efficientnetb0" => {
                Ok(WorkloadModel::EfficientNetB0)
            }
            "inception_v3" | "inception" | "inceptionv3" | "inceptionnetv3" => {
                Ok(WorkloadModel::InceptionV3)
            }
            "resnet152" | "resnet" | "resnet-152" => Ok(WorkloadModel::ResNet152),
            "vgg19" | "vgg" | "vgg-19" => Ok(WorkloadModel::Vgg19),
            other => Err(crate::DnnError::InvalidGraph {
                what: format!("unknown workload model `{other}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_and_have_expected_output() {
        for model in WorkloadModel::ALL {
            let g = model.graph(1);
            assert_eq!(g.output_shape().elements(), 1000, "{model}");
            assert!(g.total_flops() > 0);
            assert!(!g.cut_points().is_empty(), "{model} has no cut points");
        }
    }

    #[test]
    fn flops_are_in_published_ballpark() {
        // Published figures (2*MACs, single 224/299 image):
        //   VGG-19        ≈ 39.0 GFLOP
        //   ResNet-152    ≈ 22.6 GFLOP
        //   Inception-V3  ≈ 11.4 GFLOP
        //   EfficientNet-B0 ≈ 0.78 GFLOP
        let checks = [
            (WorkloadModel::Vgg19, 39.0e9, 0.25),
            (WorkloadModel::ResNet152, 22.6e9, 0.30),
            (WorkloadModel::InceptionV3, 11.4e9, 0.35),
            (WorkloadModel::EfficientNetB0, 0.78e9, 0.40),
        ];
        for (model, expected, tolerance) in checks {
            let flops = model.graph(1).total_flops() as f64;
            let rel = (flops - expected).abs() / expected;
            assert!(
                rel < tolerance,
                "{model}: {flops:.3e} flops deviates {rel:.2} from published {expected:.3e}"
            );
        }
    }

    #[test]
    fn parameter_counts_are_in_published_ballpark() {
        // Published parameter counts: VGG-19 ≈ 143.7M, ResNet-152 ≈ 60.2M,
        // Inception-V3 ≈ 23.9M, EfficientNet-B0 ≈ 5.3M (we omit SE blocks).
        let checks = [
            (WorkloadModel::Vgg19, 143.7e6, 0.10),
            (WorkloadModel::ResNet152, 60.2e6, 0.15),
            (WorkloadModel::InceptionV3, 23.9e6, 0.30),
            (WorkloadModel::EfficientNetB0, 5.3e6, 0.35),
        ];
        for (model, expected, tolerance) in checks {
            let params = model.graph(1).total_parameters() as f64;
            let rel = (params - expected).abs() / expected;
            assert!(
                rel < tolerance,
                "{model}: {params:.3e} params deviates {rel:.2} from published {expected:.3e}"
            );
        }
    }

    #[test]
    fn relative_model_ordering_matches_reality() {
        let flops: Vec<u64> = WorkloadModel::ALL
            .iter()
            .map(|m| m.graph(1).total_flops())
            .collect();
        // EfficientNet < Inception < ResNet < VGG.
        assert!(flops[0] < flops[1]);
        assert!(flops[1] < flops[2]);
        assert!(flops[2] < flops[3]);
    }

    #[test]
    fn efficientnet_is_least_gpu_friendly() {
        let aff: Vec<f64> = WorkloadModel::ALL
            .iter()
            .map(|m| m.graph(1).gpu_affinity())
            .collect();
        let eff = aff[0];
        assert!(
            eff < aff[3],
            "EfficientNet should be less GPU-friendly than VGG"
        );
    }

    #[test]
    fn name_round_trips_through_fromstr() {
        for model in WorkloadModel::ALL {
            let parsed: WorkloadModel = model.name().parse().unwrap();
            assert_eq!(parsed, model);
        }
        assert!("not-a-model".parse::<WorkloadModel>().is_err());
    }

    #[test]
    fn batch_scales_flops() {
        let g1 = WorkloadModel::EfficientNetB0.graph(1);
        let g2 = WorkloadModel::EfficientNetB0.graph(2);
        assert_eq!(g2.total_flops(), 2 * g1.total_flops());
    }
}
