//! ResNet-152 (He et al., 2016): bottleneck residual blocks arranged as
//! stages of [3, 8, 36, 3] blocks.

use crate::graph::{DnnGraph, GraphBuilder, NodeId};
use crate::layer::{LayerKind, Shape, Window};
use hidp_tensor::ops::Activation;

struct ResNetBuilder {
    b: GraphBuilder,
}

impl ResNetBuilder {
    fn conv_bn(
        &mut self,
        name: &str,
        prev: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        activation: Activation,
    ) -> NodeId {
        let padding = kernel / 2;
        let conv = self.b.layer(
            format!("{name}_conv"),
            LayerKind::Conv {
                out_channels,
                window: Window::square(kernel, stride, padding),
                activation: Activation::Linear,
            },
            &[prev],
        );
        let bn = self
            .b
            .layer(format!("{name}_bn"), LayerKind::BatchNorm, &[conv]);
        if activation == Activation::Linear {
            bn
        } else {
            self.b.layer(
                format!("{name}_act"),
                LayerKind::Activation { activation },
                &[bn],
            )
        }
    }

    /// A bottleneck block: 1×1 reduce → 3×3 → 1×1 expand, with identity or
    /// projection skip connection.
    fn bottleneck(
        &mut self,
        name: &str,
        prev: NodeId,
        mid_channels: usize,
        out_channels: usize,
        stride: usize,
        project: bool,
    ) -> NodeId {
        let c1 = self.conv_bn(
            &format!("{name}_a"),
            prev,
            mid_channels,
            1,
            1,
            Activation::Relu,
        );
        let c2 = self.conv_bn(
            &format!("{name}_b"),
            c1,
            mid_channels,
            3,
            stride,
            Activation::Relu,
        );
        let c3 = self.conv_bn(
            &format!("{name}_c"),
            c2,
            out_channels,
            1,
            1,
            Activation::Linear,
        );
        let skip = if project {
            self.conv_bn(
                &format!("{name}_proj"),
                prev,
                out_channels,
                1,
                stride,
                Activation::Linear,
            )
        } else {
            prev
        };
        let add = self
            .b
            .layer(format!("{name}_add"), LayerKind::Add, &[skip, c3]);
        self.b.layer(
            format!("{name}_out"),
            LayerKind::Activation {
                activation: Activation::Relu,
            },
            &[add],
        )
    }
}

/// Builds ResNet-152 for `resolution`×`resolution` RGB inputs (the paper uses
/// 224). The resolution must be divisible by 32.
pub fn resnet152(resolution: usize, batch: usize) -> DnnGraph {
    assert!(
        resolution >= 32 && resolution.is_multiple_of(32),
        "ResNet-152 requires a resolution divisible by 32, got {resolution}"
    );
    let mut rb = ResNetBuilder {
        b: GraphBuilder::new("resnet152"),
    };
    let input = rb.b.input(Shape::map(batch, 3, resolution, resolution));
    let stem = rb.conv_bn("stem", input, 64, 7, 2, Activation::Relu);
    let mut prev = rb.b.layer(
        "stem_pool",
        LayerKind::MaxPool {
            window: Window::square(3, 2, 1),
        },
        &[stem],
    );

    // (blocks, mid channels, out channels, first stride) per stage.
    let stages: [(usize, usize, usize, usize); 4] = [
        (3, 64, 256, 1),
        (8, 128, 512, 2),
        (36, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    for (stage_idx, (blocks, mid, out, first_stride)) in stages.into_iter().enumerate() {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            let project = block == 0;
            prev = rb.bottleneck(
                &format!("s{}b{}", stage_idx + 2, block + 1),
                prev,
                mid,
                out,
                stride,
                project,
            );
        }
    }

    let gap = rb.b.layer("gap", LayerKind::GlobalAvgPool, &[prev]);
    let flat = rb.b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = rb.b.layer(
        "fc",
        LayerKind::Dense {
            units: 1000,
            activation: Activation::Linear,
        },
        &[flat],
    );
    rb.b.layer("softmax", LayerKind::Softmax, &[fc]);
    rb.b.build().expect("resnet152 graph is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_152_weighted_convolution_layers() {
        // 1 stem conv + 3*(3+8+36+3) bottleneck convs + final FC = 152 weight
        // layers in the original counting (projections excluded).
        let g = resnet152(224, 1);
        let convs_non_proj = g
            .nodes()
            .iter()
            .filter(|n| n.kind.category() == "conv" && !n.name.contains("proj"))
            .count();
        let dense = g
            .nodes()
            .iter()
            .filter(|n| n.kind.category() == "dense")
            .count();
        assert_eq!(convs_non_proj + dense, 152);
    }

    #[test]
    fn stage_output_shapes_follow_published_architecture() {
        let g = resnet152(224, 1);
        let find = |name: &str| {
            let n = g.nodes().iter().find(|n| n.name == name).unwrap();
            g.cost(n.id).unwrap().output_shape.clone()
        };
        assert_eq!(find("stem_pool"), Shape::map(1, 64, 56, 56));
        assert_eq!(find("s2b3_out"), Shape::map(1, 256, 56, 56));
        assert_eq!(find("s3b8_out"), Shape::map(1, 512, 28, 28));
        assert_eq!(find("s4b36_out"), Shape::map(1, 1024, 14, 14));
        assert_eq!(find("s5b3_out"), Shape::map(1, 2048, 7, 7));
    }

    #[test]
    fn cut_points_exist_at_block_boundaries_only_inside_stages() {
        let g = resnet152(224, 1);
        let cut_names: Vec<&str> = g
            .cut_points()
            .iter()
            .map(|id| g.node(*id).unwrap().name.as_str())
            .collect();
        // Block outputs are cut points; interior convs of a block are not.
        assert!(cut_names.contains(&"s2b1_out"));
        assert!(cut_names.contains(&"s4b36_out"));
        assert!(!cut_names.contains(&"s2b1_b_conv"));
    }

    #[test]
    fn deeper_stages_dominate_flops() {
        let g = resnet152(224, 1);
        let stage4_flops: u64 = g
            .nodes()
            .iter()
            .filter(|n| n.name.starts_with("s4"))
            .map(|n| g.cost(n.id).unwrap().flops)
            .sum();
        assert!(stage4_flops as f64 > 0.4 * g.total_flops() as f64);
    }
}
