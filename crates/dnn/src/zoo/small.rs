//! Small networks used by execution, partitioning and equivalence tests.
//!
//! The real workload models are far too large to execute with the naive
//! reference kernels in `hidp-tensor`; these miniatures exercise the same
//! structural features (chains, residual connections, inception-style
//! branches, depthwise convolutions) at a few thousand flops.

use crate::graph::{DnnGraph, GraphBuilder};
use crate::layer::{LayerKind, Shape, Window};
use hidp_tensor::ops::Activation;

/// A stride-1 "same" convolutional chain: every layer preserves the spatial
/// size, so spatial (halo) data partitioning is exact. Ends in global average
/// pooling and a small classifier.
pub fn tiny_cnn(resolution: usize, batch: usize, classes: usize) -> DnnGraph {
    let mut b = GraphBuilder::new("tiny_cnn");
    let input = b.input(Shape::map(batch, 3, resolution, resolution));
    let c1 = b.layer(
        "c1",
        LayerKind::Conv {
            out_channels: 8,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[input],
    );
    let c2 = b.layer(
        "c2",
        LayerKind::Conv {
            out_channels: 8,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[c1],
    );
    let c3 = b.layer(
        "c3",
        LayerKind::Conv {
            out_channels: 16,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[c2],
    );
    let gap = b.layer("gap", LayerKind::GlobalAvgPool, &[c3]);
    let flat = b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = b.layer(
        "fc",
        LayerKind::Dense {
            units: classes,
            activation: Activation::Linear,
        },
        &[flat],
    );
    b.layer("softmax", LayerKind::Softmax, &[fc]);
    b.build().expect("tiny_cnn is statically valid")
}

/// A miniature residual network with two bottleneck-style blocks.
pub fn tiny_resnet(resolution: usize, batch: usize, classes: usize) -> DnnGraph {
    let mut b = GraphBuilder::new("tiny_resnet");
    let input = b.input(Shape::map(batch, 3, resolution, resolution));
    let stem = b.layer(
        "stem",
        LayerKind::Conv {
            out_channels: 8,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[input],
    );
    let mut prev = stem;
    for block in 1..=2 {
        let c1 = b.layer(
            format!("b{block}_c1"),
            LayerKind::Conv {
                out_channels: 8,
                window: Window::square(3, 1, 1),
                activation: Activation::Relu,
            },
            &[prev],
        );
        let c2 = b.layer(
            format!("b{block}_c2"),
            LayerKind::Conv {
                out_channels: 8,
                window: Window::square(3, 1, 1),
                activation: Activation::Linear,
            },
            &[c1],
        );
        let add = b.layer(format!("b{block}_add"), LayerKind::Add, &[prev, c2]);
        prev = b.layer(
            format!("b{block}_relu"),
            LayerKind::Activation {
                activation: Activation::Relu,
            },
            &[add],
        );
    }
    let gap = b.layer("gap", LayerKind::GlobalAvgPool, &[prev]);
    let flat = b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = b.layer(
        "fc",
        LayerKind::Dense {
            units: classes,
            activation: Activation::Linear,
        },
        &[flat],
    );
    b.layer("softmax", LayerKind::Softmax, &[fc]);
    b.build().expect("tiny_resnet is statically valid")
}

/// A miniature inception-style network with one 3-branch module.
pub fn tiny_inception(resolution: usize, batch: usize, classes: usize) -> DnnGraph {
    let mut b = GraphBuilder::new("tiny_inception");
    let input = b.input(Shape::map(batch, 3, resolution, resolution));
    let stem = b.layer(
        "stem",
        LayerKind::Conv {
            out_channels: 8,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[input],
    );
    let b1 = b.layer(
        "branch_1x1",
        LayerKind::Conv {
            out_channels: 4,
            window: Window::square(1, 1, 0),
            activation: Activation::Relu,
        },
        &[stem],
    );
    let b2a = b.layer(
        "branch_3x3a",
        LayerKind::Conv {
            out_channels: 4,
            window: Window::square(1, 1, 0),
            activation: Activation::Relu,
        },
        &[stem],
    );
    let b2 = b.layer(
        "branch_3x3b",
        LayerKind::Conv {
            out_channels: 6,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        },
        &[b2a],
    );
    let pool = b.layer(
        "branch_pool",
        LayerKind::AvgPool {
            window: Window::square(3, 1, 1),
        },
        &[stem],
    );
    let b3 = b.layer(
        "branch_poolproj",
        LayerKind::Conv {
            out_channels: 4,
            window: Window::square(1, 1, 0),
            activation: Activation::Relu,
        },
        &[pool],
    );
    let concat = b.layer("concat", LayerKind::Concat, &[b1, b2, b3]);
    let gap = b.layer("gap", LayerKind::GlobalAvgPool, &[concat]);
    let flat = b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = b.layer(
        "fc",
        LayerKind::Dense {
            units: classes,
            activation: Activation::Linear,
        },
        &[flat],
    );
    b.layer("softmax", LayerKind::Softmax, &[fc]);
    b.build().expect("tiny_inception is statically valid")
}

/// A miniature depthwise-separable network (EfficientNet-style blocks).
pub fn tiny_mobilenet(resolution: usize, batch: usize, classes: usize) -> DnnGraph {
    let mut b = GraphBuilder::new("tiny_mobilenet");
    let input = b.input(Shape::map(batch, 3, resolution, resolution));
    let stem = b.layer(
        "stem",
        LayerKind::Conv {
            out_channels: 8,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu6,
        },
        &[input],
    );
    let mut prev = stem;
    for block in 1..=2 {
        let dw = b.layer(
            format!("b{block}_dw"),
            LayerKind::DepthwiseConv {
                window: Window::square(3, 1, 1),
                activation: Activation::Relu6,
            },
            &[prev],
        );
        let bn = b.layer(format!("b{block}_bn"), LayerKind::BatchNorm, &[dw]);
        prev = b.layer(
            format!("b{block}_pw"),
            LayerKind::Conv {
                out_channels: 8,
                window: Window::square(1, 1, 0),
                activation: Activation::Relu6,
            },
            &[bn],
        );
    }
    let gap = b.layer("gap", LayerKind::GlobalAvgPool, &[prev]);
    let flat = b.layer("flatten", LayerKind::Flatten, &[gap]);
    let fc = b.layer(
        "fc",
        LayerKind::Dense {
            units: classes,
            activation: Activation::Linear,
        },
        &[flat],
    );
    b.layer("softmax", LayerKind::Softmax, &[fc]);
    b.build().expect("tiny_mobilenet is statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_small_models_build() {
        for g in [
            tiny_cnn(16, 1, 10),
            tiny_resnet(16, 1, 10),
            tiny_inception(16, 1, 10),
            tiny_mobilenet(16, 1, 10),
        ] {
            assert_eq!(g.output_shape().elements(), 10, "{}", g.name());
            assert!(g.total_flops() > 0);
            assert!(!g.cut_points().is_empty());
        }
    }

    #[test]
    fn small_models_support_batches() {
        let g = tiny_cnn(16, 4, 10);
        assert_eq!(g.input_shape().batch(), 4);
        assert_eq!(g.output_shape(), &Shape::vector(4, 10));
    }

    #[test]
    fn tiny_inception_concat_channels() {
        let g = tiny_inception(16, 1, 10);
        let concat = g.nodes().iter().find(|n| n.name == "concat").unwrap();
        assert_eq!(
            g.cost(concat.id).unwrap().output_shape,
            Shape::map(1, 14, 16, 16)
        );
    }
}
