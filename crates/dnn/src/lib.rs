//! # hidp-dnn
//!
//! DNN graph representation, analytical cost model, model zoo and
//! partitioning primitives for the HiDP reproduction.
//!
//! The HiDP decision problem (which partitioning mode, where to cut, how to
//! distribute) only needs *analytical* properties of a network: per-layer
//! flops, parameter bytes and activation sizes. This crate provides:
//!
//! * [`DnnGraph`] — a validated DAG of [`LayerKind`] nodes with inferred
//!   shapes and costs ([`GraphBuilder`] constructs them);
//! * [`zoo`] — ResNet-152, VGG-19, Inception-V3 and EfficientNet-B0 (the
//!   paper's four workloads) plus small test networks;
//! * [`partition`] — model-wise layer blocks and data-wise parallel parts;
//! * [`exec`] — reference execution on [`hidp_tensor`] tensors, used to prove
//!   that partitioned execution is equivalent to whole-model execution.
//!
//! ```
//! use hidp_dnn::zoo::WorkloadModel;
//!
//! let resnet = WorkloadModel::ResNet152.graph(1);
//! println!("{}: {:.1} GFLOP", resnet.name(), resnet.total_flops() as f64 / 1e9);
//! assert!(resnet.cut_points().len() > 50);
//! ```

#![warn(missing_docs)]

mod error;
pub mod exec;
mod graph;
mod layer;
pub mod partition;
pub mod zoo;

pub use error::DnnError;
pub use graph::{DnnGraph, GraphBuilder, LayerNode, NodeCost, NodeId};
pub use layer::{LayerKind, Shape, Window};
pub use partition::{DataPartition, LayerBlock, ModelPartition, PartitionMode};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DnnError>;
