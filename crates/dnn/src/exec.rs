//! Reference execution of DNN graphs on [`hidp_tensor`] tensors.
//!
//! This module exists to *verify* the paper's claim that partitioned
//! inference produces exactly the same predictions as whole-model inference
//! (§IV-B, the Top-1/Top-5 accuracy table): it can run a graph whole, as a
//! pipeline of layer blocks, or as data-partitioned sub-executions, and the
//! results can be compared bit-for-bit (within floating-point tolerance).
//!
//! Weights are generated deterministically from a seed, so every execution
//! of the same `(graph, seed)` pair is reproducible.

use crate::graph::{DnnGraph, NodeId};
use crate::layer::LayerKind;
use crate::partition::ModelPartition;
use crate::DnnError;
use hidp_tensor::{ops, split, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Per-node weights for the layers that have parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeWeights {
    /// Convolution / depthwise convolution / dense weights and bias.
    WeightBias {
        /// Kernel or weight matrix.
        weight: Tensor,
        /// Bias vector.
        bias: Tensor,
    },
    /// Batch-normalisation parameters.
    BatchNorm {
        /// Scale per channel.
        gamma: Tensor,
        /// Shift per channel.
        beta: Tensor,
        /// Running mean per channel.
        mean: Tensor,
        /// Running variance per channel (strictly positive).
        var: Tensor,
    },
    /// The layer has no parameters.
    None,
}

/// Deterministic weight storage for one graph.
#[derive(Debug, Clone)]
pub struct WeightStore {
    weights: HashMap<NodeId, NodeWeights>,
}

impl WeightStore {
    /// Generates weights for every parameterised layer of `graph` from
    /// `seed`. The same `(graph, seed)` pair always produces identical
    /// weights.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction failures (which indicate an invalid
    /// graph and should not occur for zoo models).
    pub fn generate(graph: &DnnGraph, seed: u64) -> Result<Self, DnnError> {
        let mut weights = HashMap::new();
        for node in graph.nodes() {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (node.id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let input_shape = node
                .inputs
                .first()
                .map(|dep| graph.cost(*dep).map(|c| c.output_shape.clone()))
                .transpose()?;
            let entry = match &node.kind {
                LayerKind::Conv {
                    out_channels,
                    window,
                    ..
                } => {
                    let c_in = match &input_shape {
                        Some(crate::layer::Shape::Map { c, .. }) => *c,
                        _ => {
                            return Err(DnnError::ShapeError {
                                layer: node.name.clone(),
                                what: "conv layer without a feature-map input".into(),
                            })
                        }
                    };
                    let fan_in = (c_in * window.kernel.0 * window.kernel.1) as f32;
                    let scale = (2.0 / fan_in).sqrt();
                    NodeWeights::WeightBias {
                        weight: Tensor::random(
                            &[*out_channels, c_in, window.kernel.0, window.kernel.1],
                            scale,
                            &mut rng,
                        )?,
                        bias: Tensor::random(&[*out_channels], 0.05, &mut rng)?,
                    }
                }
                LayerKind::DepthwiseConv { window, .. } => {
                    let c = match &input_shape {
                        Some(crate::layer::Shape::Map { c, .. }) => *c,
                        _ => {
                            return Err(DnnError::ShapeError {
                                layer: node.name.clone(),
                                what: "depthwise layer without a feature-map input".into(),
                            })
                        }
                    };
                    let fan_in = (window.kernel.0 * window.kernel.1) as f32;
                    let scale = (2.0 / fan_in).sqrt();
                    NodeWeights::WeightBias {
                        weight: Tensor::random(
                            &[c, 1, window.kernel.0, window.kernel.1],
                            scale,
                            &mut rng,
                        )?,
                        bias: Tensor::random(&[c], 0.05, &mut rng)?,
                    }
                }
                LayerKind::Dense { units, .. } => {
                    let in_features = match &input_shape {
                        Some(crate::layer::Shape::Vector { features, .. }) => *features,
                        Some(crate::layer::Shape::Map { c, h, w, .. }) => c * h * w,
                        None => {
                            return Err(DnnError::ShapeError {
                                layer: node.name.clone(),
                                what: "dense layer without an input".into(),
                            })
                        }
                    };
                    let scale = (1.0 / in_features as f32).sqrt();
                    NodeWeights::WeightBias {
                        weight: Tensor::random(&[*units, in_features], scale, &mut rng)?,
                        bias: Tensor::random(&[*units], 0.05, &mut rng)?,
                    }
                }
                LayerKind::BatchNorm => {
                    let c = match &input_shape {
                        Some(crate::layer::Shape::Map { c, .. }) => *c,
                        Some(crate::layer::Shape::Vector { features, .. }) => *features,
                        None => {
                            return Err(DnnError::ShapeError {
                                layer: node.name.clone(),
                                what: "batch-norm layer without an input".into(),
                            })
                        }
                    };
                    let gamma = Tensor::random(&[c], 0.5, &mut rng)?;
                    let beta = Tensor::random(&[c], 0.1, &mut rng)?;
                    let mean = Tensor::random(&[c], 0.2, &mut rng)?;
                    // Variance must be positive.
                    let var = Tensor::from_fn(&[c], |i| 0.5 + ((i % 7) as f32) * 0.1)?;
                    NodeWeights::BatchNorm {
                        gamma,
                        beta,
                        mean,
                        var,
                    }
                }
                _ => NodeWeights::None,
            };
            weights.insert(node.id, entry);
        }
        Ok(Self { weights })
    }

    /// Weights for one node ([`NodeWeights::None`] for parameter-free layers).
    pub fn node(&self, id: NodeId) -> &NodeWeights {
        self.weights.get(&id).unwrap_or(&NodeWeights::None)
    }
}

/// Executes graph nodes in the half-open topological range `[first, last]`,
/// feeding `input` to any node whose producers lie outside the range.
///
/// For ranges delimited by cut points exactly one external tensor is needed,
/// which is what makes block pipelining correct.
fn execute_range(
    graph: &DnnGraph,
    first: usize,
    last: usize,
    input: &Tensor,
    store: &WeightStore,
) -> Result<Tensor, DnnError> {
    let mut values: HashMap<NodeId, Tensor> = HashMap::new();
    for pos in first..=last {
        let id = NodeId(pos);
        let node = graph.node(id)?;
        let gather = |dep: &NodeId| -> Result<Tensor, DnnError> {
            if dep.0 < first {
                Ok(input.clone())
            } else {
                values
                    .get(dep)
                    .cloned()
                    .ok_or(DnnError::UnknownNode { id: dep.0 })
            }
        };
        let inputs: Vec<Tensor> = node.inputs.iter().map(gather).collect::<Result<_, _>>()?;
        let out = eval_node(graph, id, &inputs, input, store)?;
        values.insert(id, out);
    }
    values
        .remove(&NodeId(last))
        .ok_or(DnnError::UnknownNode { id: last })
}

fn eval_node(
    graph: &DnnGraph,
    id: NodeId,
    inputs: &[Tensor],
    external_input: &Tensor,
    store: &WeightStore,
) -> Result<Tensor, DnnError> {
    let node = graph.node(id)?;
    let first_input = inputs.first();
    let out = match &node.kind {
        LayerKind::Input { .. } => external_input.clone(),
        LayerKind::Conv {
            window, activation, ..
        } => {
            let (weight, bias) = expect_weight_bias(store, id, &node.name)?;
            let conv = ops::conv2d(
                required(first_input, &node.name)?,
                weight,
                Some(bias),
                window.stride,
                window.padding,
            )?;
            activation.apply(&conv)
        }
        LayerKind::DepthwiseConv { window, activation } => {
            let (weight, bias) = expect_weight_bias(store, id, &node.name)?;
            let conv = ops::depthwise_conv2d(
                required(first_input, &node.name)?,
                weight,
                Some(bias),
                window.stride,
                window.padding,
            )?;
            activation.apply(&conv)
        }
        LayerKind::MaxPool { window } => ops::max_pool2d(
            required(first_input, &node.name)?,
            window.kernel,
            window.stride,
            window.padding,
        )?,
        LayerKind::AvgPool { window } => ops::avg_pool2d(
            required(first_input, &node.name)?,
            window.kernel,
            window.stride,
            window.padding,
        )?,
        LayerKind::GlobalAvgPool => ops::global_avg_pool(required(first_input, &node.name)?)?,
        LayerKind::BatchNorm => {
            let (gamma, beta, mean, var) = expect_batch_norm(store, id, &node.name)?;
            ops::batch_norm(
                required(first_input, &node.name)?,
                gamma,
                beta,
                mean,
                var,
                1e-5,
            )?
        }
        LayerKind::Activation { activation } => {
            activation.apply(required(first_input, &node.name)?)
        }
        LayerKind::Flatten => required(first_input, &node.name)?.flattened()?,
        LayerKind::Dense { activation, .. } => {
            let (weight, bias) = expect_weight_bias(store, id, &node.name)?;
            let x = required(first_input, &node.name)?;
            let x2 = if x.rank() == 4 {
                x.flattened()?
            } else {
                x.clone()
            };
            let out = ops::dense(&x2, weight, Some(bias))?;
            activation.apply(&out)
        }
        LayerKind::Add => {
            if inputs.len() != 2 {
                return Err(DnnError::ShapeError {
                    layer: node.name.clone(),
                    what: format!("add expects 2 inputs, got {}", inputs.len()),
                });
            }
            ops::add(&inputs[0], &inputs[1])?
        }
        LayerKind::Concat => {
            let refs: Vec<&Tensor> = inputs.iter().collect();
            ops::concat_channels(&refs)?
        }
        LayerKind::Softmax => ops::softmax(required(first_input, &node.name)?)?,
    };
    Ok(out)
}

fn required<'a>(input: Option<&'a Tensor>, layer: &str) -> Result<&'a Tensor, DnnError> {
    input.ok_or_else(|| DnnError::ShapeError {
        layer: layer.to_string(),
        what: "missing input tensor".into(),
    })
}

fn expect_weight_bias<'a>(
    store: &'a WeightStore,
    id: NodeId,
    layer: &str,
) -> Result<(&'a Tensor, &'a Tensor), DnnError> {
    match store.node(id) {
        NodeWeights::WeightBias { weight, bias } => Ok((weight, bias)),
        _ => Err(DnnError::ShapeError {
            layer: layer.to_string(),
            what: "missing weights for parameterised layer".into(),
        }),
    }
}

fn expect_batch_norm<'a>(
    store: &'a WeightStore,
    id: NodeId,
    layer: &str,
) -> Result<(&'a Tensor, &'a Tensor, &'a Tensor, &'a Tensor), DnnError> {
    match store.node(id) {
        NodeWeights::BatchNorm {
            gamma,
            beta,
            mean,
            var,
        } => Ok((gamma, beta, mean, var)),
        _ => Err(DnnError::ShapeError {
            layer: layer.to_string(),
            what: "missing batch-norm parameters".into(),
        }),
    }
}

/// Executes the whole graph on `input`.
///
/// # Errors
///
/// Returns an error when `input` does not match the graph's input shape or a
/// layer evaluation fails.
pub fn execute(graph: &DnnGraph, input: &Tensor, store: &WeightStore) -> Result<Tensor, DnnError> {
    if input.shape() != graph.input_shape().dims().as_slice() {
        return Err(DnnError::ShapeError {
            layer: graph.input().name.clone(),
            what: format!(
                "input shape {:?} does not match graph input {:?}",
                input.shape(),
                graph.input_shape().dims()
            ),
        });
    }
    execute_range(graph, 0, graph.len() - 1, input, store)
}

/// Executes the graph as a pipeline of layer blocks, passing each block's
/// output tensor to the next block — exactly what distributed model
/// partitioning does across devices.
///
/// # Errors
///
/// Returns an error when the partition does not cover the graph or a layer
/// evaluation fails.
pub fn execute_model_partition(
    graph: &DnnGraph,
    partition: &ModelPartition,
    input: &Tensor,
    store: &WeightStore,
) -> Result<Tensor, DnnError> {
    if partition.is_empty() {
        return Err(DnnError::InvalidPartition {
            what: "model partition has no blocks".into(),
        });
    }
    let mut current = input.clone();
    for block in &partition.blocks {
        current = execute_range(graph, block.first, block.last, &current, store)?;
    }
    Ok(current)
}

/// Executes the graph data-partitioned along the batch axis: the batch is
/// split into `parts` contiguous sub-batches, each executed independently
/// (as a follower node would), and the outputs are concatenated.
///
/// Exact for every network, which is why the merged result must equal
/// whole-batch execution.
///
/// # Errors
///
/// Returns an error when `parts` is zero or exceeds the batch size, or a
/// layer evaluation fails.
pub fn execute_data_partition_batch(
    graph: &DnnGraph,
    parts: usize,
    input: &Tensor,
    store: &WeightStore,
) -> Result<Tensor, DnnError> {
    let sub_inputs = split::split_batch(input, parts)?;
    let mut outputs = Vec::with_capacity(parts);
    for sub in &sub_inputs {
        let sub_graph = graph.with_batch(sub.shape()[0])?;
        outputs.push(execute(&sub_graph, sub, store)?);
    }
    Ok(split::merge_batch(&outputs)?)
}

/// Length of the maximal graph prefix whose layers all preserve spatial
/// height (stride-1 convolutions/pools, element-wise layers). Within this
/// prefix spatial (halo) data partitioning is exact.
pub fn spatial_prefix_len(graph: &DnnGraph) -> usize {
    let mut len = 0usize;
    for node in graph.nodes() {
        let preserves = match &node.kind {
            LayerKind::Input { .. } => true,
            LayerKind::Conv { window, .. } | LayerKind::DepthwiseConv { window, .. } => {
                window.stride == (1, 1)
                    && window.kernel.0 == 2 * window.padding.0 + 1
                    && window.kernel.1 == 2 * window.padding.1 + 1
            }
            LayerKind::MaxPool { window } | LayerKind::AvgPool { window } => {
                window.stride == (1, 1)
                    && window.kernel.0 == 2 * window.padding.0 + 1
                    && window.kernel.1 == 2 * window.padding.1 + 1
            }
            LayerKind::BatchNorm
            | LayerKind::Activation { .. }
            | LayerKind::Add
            | LayerKind::Concat => true,
            _ => false,
        };
        if preserves {
            len += 1;
        } else {
            break;
        }
    }
    len
}

/// Executes the graph with its spatial prefix data-partitioned into `parts`
/// height slabs (with `halo` overlap rows), then the remainder of the network
/// on the merged feature map. This mirrors MoDNN-style spatial partitioning.
///
/// # Errors
///
/// Returns an error when the graph has no spatial prefix, the split is
/// invalid, or a layer evaluation fails.
pub fn execute_data_partition_spatial(
    graph: &DnnGraph,
    parts: usize,
    halo: usize,
    input: &Tensor,
    store: &WeightStore,
) -> Result<Tensor, DnnError> {
    let prefix = spatial_prefix_len(graph);
    if prefix < 2 {
        return Err(DnnError::InvalidPartition {
            what: "graph has no spatially-preserving prefix to partition".into(),
        });
    }
    let slices = split::split_height_with_halo(input, parts, halo)?;
    let mut processed = Vec::with_capacity(parts);
    for slice in &slices {
        let out = execute_range(graph, 0, prefix - 1, &slice.tensor, store)?;
        processed.push((slice.clone(), out));
    }
    let merged = split::merge_height(&processed)?;
    if prefix == graph.len() {
        return Ok(merged);
    }
    execute_range(graph, prefix, graph.len() - 1, &merged, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition_into_blocks, single_block};
    use crate::zoo::small;

    fn run_whole(graph: &DnnGraph, seed: u64) -> (Tensor, Tensor, WeightStore) {
        let store = WeightStore::generate(graph, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let input = Tensor::random(&graph.input_shape().dims(), 1.0, &mut rng).unwrap();
        let out = execute(graph, &input, &store).unwrap();
        (input, out, store)
    }

    #[test]
    fn whole_execution_produces_probability_rows() {
        for graph in [
            small::tiny_cnn(12, 2, 7),
            small::tiny_resnet(12, 1, 7),
            small::tiny_inception(12, 1, 7),
            small::tiny_mobilenet(12, 1, 7),
        ] {
            let (_, out, _) = run_whole(&graph, 3);
            assert_eq!(out.shape(), graph.output_shape().dims().as_slice());
            let batch = graph.output_shape().batch();
            for row in 0..batch {
                let sum: f32 = out.data()[row * 7..(row + 1) * 7].iter().sum();
                assert!((sum - 1.0).abs() < 1e-4, "{}", graph.name());
            }
        }
    }

    #[test]
    fn execution_is_deterministic_per_seed() {
        let graph = small::tiny_resnet(12, 1, 5);
        let (_, a, _) = run_whole(&graph, 11);
        let (_, b, _) = run_whole(&graph, 11);
        assert_eq!(a, b);
        let (_, c, _) = run_whole(&graph, 12);
        assert!(a.max_abs_diff(&c).unwrap() > 0.0);
    }

    #[test]
    fn model_partition_matches_whole_execution() {
        for graph in [
            small::tiny_cnn(12, 1, 6),
            small::tiny_resnet(12, 1, 6),
            small::tiny_inception(12, 1, 6),
        ] {
            let (input, whole, store) = run_whole(&graph, 5);
            // Two-block and three-block pipelines at arbitrary cut points.
            let cuts = graph.cut_points();
            let mid = cuts[cuts.len() / 2];
            for boundaries in [vec![mid], vec![cuts[1], cuts[cuts.len() - 2]]] {
                if boundaries.windows(2).any(|w| w[1] <= w[0]) {
                    continue;
                }
                let partition = partition_into_blocks(&graph, &boundaries).unwrap();
                let out = execute_model_partition(&graph, &partition, &input, &store).unwrap();
                assert!(
                    out.approx_eq(&whole, 1e-4).unwrap(),
                    "{} blocks on {}",
                    partition.len(),
                    graph.name()
                );
            }
        }
    }

    #[test]
    fn single_block_partition_is_identity() {
        let graph = small::tiny_mobilenet(12, 1, 6);
        let (input, whole, store) = run_whole(&graph, 9);
        let partition = single_block(&graph);
        let out = execute_model_partition(&graph, &partition, &input, &store).unwrap();
        assert!(out.approx_eq(&whole, 1e-5).unwrap());
    }

    #[test]
    fn batch_data_partition_matches_whole_execution() {
        let graph = small::tiny_cnn(12, 4, 5);
        let (input, whole, store) = run_whole(&graph, 21);
        for parts in [2, 3, 4] {
            let out = execute_data_partition_batch(&graph, parts, &input, &store).unwrap();
            assert!(out.approx_eq(&whole, 1e-4).unwrap(), "parts={parts}");
        }
    }

    #[test]
    fn spatial_data_partition_matches_whole_execution() {
        let graph = small::tiny_cnn(18, 1, 5);
        let (input, whole, store) = run_whole(&graph, 33);
        // tiny_cnn has three stride-1 convs before GAP; receptive-field radius
        // grows by 1 per conv, so halo = 3 is sufficient.
        for parts in [2, 3] {
            let out = execute_data_partition_spatial(&graph, parts, 3, &input, &store).unwrap();
            assert!(out.approx_eq(&whole, 1e-4).unwrap(), "parts={parts}");
        }
    }

    #[test]
    fn insufficient_halo_changes_the_result() {
        let graph = small::tiny_cnn(18, 1, 5);
        let (input, whole, store) = run_whole(&graph, 33);
        let out = execute_data_partition_spatial(&graph, 3, 0, &input, &store).unwrap();
        assert!(out.max_abs_diff(&whole).unwrap() > 1e-6);
    }

    #[test]
    fn spatial_prefix_detects_stride_boundaries() {
        let cnn = small::tiny_cnn(16, 1, 5);
        // input + 3 convs preserve height; GAP does not.
        assert_eq!(spatial_prefix_len(&cnn), 4);
        let vgg = crate::zoo::vgg19(224, 1);
        // input + conv1_1 + conv1_2, then pool1 (stride 2) stops the prefix.
        assert_eq!(spatial_prefix_len(&vgg), 3);
    }

    #[test]
    fn wrong_input_shape_is_rejected() {
        let graph = small::tiny_cnn(12, 1, 5);
        let store = WeightStore::generate(&graph, 0).unwrap();
        let bad = Tensor::zeros(&[1, 3, 10, 12]).unwrap();
        assert!(execute(&graph, &bad, &store).is_err());
    }

    #[test]
    fn weight_store_is_deterministic() {
        let graph = small::tiny_resnet(12, 1, 5);
        let a = WeightStore::generate(&graph, 7).unwrap();
        let b = WeightStore::generate(&graph, 7).unwrap();
        for node in graph.nodes() {
            assert_eq!(a.node(node.id), b.node(node.id));
        }
    }

    #[test]
    fn argmax_predictions_survive_partitioning() {
        // The paper's accuracy argument: predictions (argmax of the softmax)
        // are identical under partitioning.
        let graph = small::tiny_inception(14, 3, 9);
        let (input, whole, store) = run_whole(&graph, 77);
        let partition = partition_into_blocks(&graph, &[graph.cut_points()[1]]).unwrap();
        let piped = execute_model_partition(&graph, &partition, &input, &store).unwrap();
        let batched = execute_data_partition_batch(&graph, 3, &input, &store).unwrap();
        assert_eq!(whole.argmax_rows().unwrap(), piped.argmax_rows().unwrap());
        assert_eq!(whole.argmax_rows().unwrap(), batched.argmax_rows().unwrap());
    }
}
