use std::error::Error;
use std::fmt;

/// Error type for DNN graph construction, partitioning and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// A node id referenced an entry that does not exist in the graph.
    UnknownNode {
        /// The offending node id.
        id: usize,
    },
    /// The graph violates a structural invariant (cycle, missing input, ...).
    InvalidGraph {
        /// Human-readable description of the violation.
        what: String,
    },
    /// A layer received an input shape it cannot handle.
    ShapeError {
        /// Name of the layer that failed.
        layer: String,
        /// Description of the mismatch.
        what: String,
    },
    /// A partitioning request was invalid (zero blocks, too many partitions, ...).
    InvalidPartition {
        /// Description of the invalid request.
        what: String,
    },
    /// A tensor-level operation failed during execution.
    Tensor(hidp_tensor::TensorError),
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            DnnError::InvalidGraph { what } => write!(f, "invalid graph: {what}"),
            DnnError::ShapeError { layer, what } => {
                write!(f, "shape error in layer `{layer}`: {what}")
            }
            DnnError::InvalidPartition { what } => write!(f, "invalid partition: {what}"),
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for DnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hidp_tensor::TensorError> for DnnError {
    fn from(e: hidp_tensor::TensorError) -> Self {
        DnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DnnError::UnknownNode { id: 7 };
        assert!(e.to_string().contains('7'));
        let e = DnnError::ShapeError {
            layer: "conv1".into(),
            what: "expected 3 channels".into(),
        };
        assert!(e.to_string().contains("conv1"));
    }

    #[test]
    fn tensor_errors_convert_and_chain() {
        let te = hidp_tensor::TensorError::InvalidArgument {
            what: "stride".into(),
        };
        let e: DnnError = te.clone().into();
        assert_eq!(e, DnnError::Tensor(te));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
