//! The DNN DAG representation used throughout the HiDP reproduction.
//!
//! The paper models a DNN as a directed acyclic graph whose nodes are layers
//! and whose edges are tensors (§III, *System Model*). [`DnnGraph`] stores
//! exactly that, plus the analytical annotations the partitioners need:
//! per-layer output shapes, flops, parameter bytes and activation bytes.

use crate::layer::{LayerKind, Shape};
use crate::DnnError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a node inside a [`DnnGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single layer instance inside the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNode {
    /// Node identifier (index into the graph's node vector).
    pub id: NodeId,
    /// Human-readable name, unique within the graph.
    pub name: String,
    /// The layer descriptor.
    pub kind: LayerKind,
    /// Producers feeding this layer, in argument order.
    pub inputs: Vec<NodeId>,
}

/// Analytical annotations for one node, computed by [`DnnGraph::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeCost {
    /// Output tensor shape.
    pub output_shape: Shape,
    /// Floating point operations to evaluate the node once.
    pub flops: u64,
    /// Parameter storage in bytes.
    pub parameter_bytes: u64,
    /// Output activation size in bytes.
    pub output_bytes: u64,
}

/// An immutable, validated DNN graph with cost annotations.
///
/// Construct one with [`GraphBuilder`] (usually via the model zoo in
/// [`crate::zoo`]).
///
/// ```
/// use hidp_dnn::zoo;
///
/// let vgg = zoo::vgg19(224, 1);
/// assert!(vgg.total_flops() > 1e9 as u64);
/// assert_eq!(vgg.name(), "vgg19");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnGraph {
    name: String,
    nodes: Vec<LayerNode>,
    costs: Vec<NodeCost>,
    topo_order: Vec<NodeId>,
    consumers: Vec<Vec<NodeId>>,
    cut_points: Vec<NodeId>,
    fingerprint: u64,
    /// `prefix_flops[i]` = flops of positions `0..i` (length `len() + 1`),
    /// so any contiguous span's flops are one subtraction.
    prefix_flops: Vec<u64>,
    /// `prefix_output_bytes[i]` = activation bytes of positions `0..i`.
    prefix_output_bytes: Vec<u64>,
}

impl DnnGraph {
    fn new(name: String, nodes: Vec<LayerNode>) -> Result<Self, DnnError> {
        if nodes.is_empty() {
            return Err(DnnError::InvalidGraph {
                what: "graph has no nodes".into(),
            });
        }
        // Validate ids and references.
        let mut names = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            if node.id.0 != i {
                return Err(DnnError::InvalidGraph {
                    what: format!("node `{}` has id {} but position {i}", node.name, node.id),
                });
            }
            if names.insert(node.name.clone(), node.id).is_some() {
                return Err(DnnError::InvalidGraph {
                    what: format!("duplicate node name `{}`", node.name),
                });
            }
            if let Some(expected) = node.kind.arity() {
                if node.inputs.len() != expected {
                    return Err(DnnError::InvalidGraph {
                        what: format!(
                            "node `{}` expects {expected} inputs but has {}",
                            node.name,
                            node.inputs.len()
                        ),
                    });
                }
            } else if node.inputs.is_empty() {
                return Err(DnnError::InvalidGraph {
                    what: format!("node `{}` expects at least one input", node.name),
                });
            }
            for dep in &node.inputs {
                if dep.0 >= nodes.len() {
                    return Err(DnnError::UnknownNode { id: dep.0 });
                }
                if dep.0 >= i {
                    return Err(DnnError::InvalidGraph {
                        what: format!(
                            "node `{}` depends on node {} that is not earlier in the build order",
                            node.name, dep.0
                        ),
                    });
                }
            }
        }
        // Builders add nodes in topological order by construction (checked above).
        let topo_order: Vec<NodeId> = nodes.iter().map(|n| n.id).collect();

        // Shape and cost inference.
        let mut costs: Vec<NodeCost> = Vec::with_capacity(nodes.len());
        for node in &nodes {
            let input_shapes: Vec<Shape> = node
                .inputs
                .iter()
                .map(|dep| costs[dep.0].output_shape.clone())
                .collect();
            let output_shape = node.kind.output_shape(&node.name, &input_shapes)?;
            let flops = node.kind.flops(&input_shapes, &output_shape);
            let parameter_bytes = node.kind.parameter_bytes(&input_shapes);
            let output_bytes = output_shape.bytes();
            costs.push(NodeCost {
                output_shape,
                flops,
                parameter_bytes,
                output_bytes,
            });
        }

        // Consumers (reverse edges).
        let mut consumers: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for node in &nodes {
            for dep in &node.inputs {
                consumers[dep.0].push(node.id);
            }
        }

        // Cut points: positions i in topo order such that every edge from
        // {0..=i} into {i+1..} originates at node i. These are the legal
        // model-partition boundaries (exactly one tensor crosses the cut).
        let mut cut_points = Vec::new();
        for (i, node) in nodes.iter().enumerate() {
            if i + 1 == nodes.len() {
                break;
            }
            let mut ok = true;
            for earlier in &nodes[..=i] {
                if earlier.id.0 == i {
                    continue;
                }
                if consumers[earlier.id.0].iter().any(|c| c.0 > i) {
                    ok = false;
                    break;
                }
            }
            if ok {
                cut_points.push(node.id);
            }
        }

        let fingerprint = fingerprint_of(&name, &nodes, &costs);

        // Prefix sums over the topological positions, computed once so the
        // partitioners' per-request chain walks (`chain_segments`,
        // `workload_summary`) read spans in O(1) instead of re-walking
        // `cost()` per call.
        let mut prefix_flops = Vec::with_capacity(costs.len() + 1);
        let mut prefix_output_bytes = Vec::with_capacity(costs.len() + 1);
        prefix_flops.push(0);
        prefix_output_bytes.push(0);
        let (mut flops_acc, mut bytes_acc) = (0u64, 0u64);
        for cost in &costs {
            flops_acc += cost.flops;
            bytes_acc += cost.output_bytes;
            prefix_flops.push(flops_acc);
            prefix_output_bytes.push(bytes_acc);
        }

        Ok(Self {
            name,
            nodes,
            costs,
            topo_order,
            consumers,
            cut_points,
            fingerprint,
            prefix_flops,
            prefix_output_bytes,
        })
    }

    /// The model name (e.g. `"resnet152"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[LayerNode] {
        &self.nodes
    }

    /// Number of layers in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes (never true for a valid graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownNode`] for ids outside the graph.
    pub fn node(&self, id: NodeId) -> Result<&LayerNode, DnnError> {
        self.nodes
            .get(id.0)
            .ok_or(DnnError::UnknownNode { id: id.0 })
    }

    /// Cost annotations of a node.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::UnknownNode`] for ids outside the graph.
    pub fn cost(&self, id: NodeId) -> Result<&NodeCost, DnnError> {
        self.costs
            .get(id.0)
            .ok_or(DnnError::UnknownNode { id: id.0 })
    }

    /// Nodes in topological (construction) order.
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo_order
    }

    /// Nodes that consume the output of `id`.
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.0]
    }

    /// Legal model-partition boundaries: after each of these nodes exactly one
    /// tensor crosses to the rest of the network.
    pub fn cut_points(&self) -> &[NodeId] {
        &self.cut_points
    }

    /// The input node (first node, always `LayerKind::Input`).
    pub fn input(&self) -> &LayerNode {
        &self.nodes[0]
    }

    /// The final node in topological order (the network output).
    pub fn output(&self) -> &LayerNode {
        self.nodes.last().expect("graph is never empty")
    }

    /// Shape of the network input.
    pub fn input_shape(&self) -> &Shape {
        &self.costs[0].output_shape
    }

    /// Shape of the network output.
    pub fn output_shape(&self) -> &Shape {
        &self.costs[self.nodes.len() - 1].output_shape
    }

    /// Total floating point operations for one inference. O(1): read from
    /// the prefix sums computed at construction.
    pub fn total_flops(&self) -> u64 {
        *self.prefix_flops.last().expect("prefix sums are non-empty")
    }

    /// Flops of the contiguous topological span `first..=last`, in O(1)
    /// via the prefix sums computed at construction.
    ///
    /// # Panics
    ///
    /// Panics when `last < first` or `last` is outside the graph — in
    /// release builds too (the explicit assert keeps the documented
    /// contract where a plain subtraction would silently wrap).
    pub fn span_flops(&self, first: usize, last: usize) -> u64 {
        assert!(first <= last, "span {first}..={last} is inverted");
        self.prefix_flops[last + 1] - self.prefix_flops[first]
    }

    /// Activation bytes produced by the contiguous topological span
    /// `first..=last`, in O(1) via the prefix sums computed at construction.
    ///
    /// # Panics
    ///
    /// Panics when `last < first` or `last` is outside the graph — in
    /// release builds too (the explicit assert keeps the documented
    /// contract where a plain subtraction would silently wrap).
    pub fn span_output_bytes(&self, first: usize, last: usize) -> u64 {
        assert!(first <= last, "span {first}..={last} is inverted");
        self.prefix_output_bytes[last + 1] - self.prefix_output_bytes[first]
    }

    /// Total parameter storage in bytes.
    pub fn total_parameter_bytes(&self) -> u64 {
        self.costs.iter().map(|c| c.parameter_bytes).sum()
    }

    /// Total parameter count.
    pub fn total_parameters(&self) -> u64 {
        self.total_parameter_bytes() / 4
    }

    /// Sum of all activation sizes (bytes moved between layers). O(1): read
    /// from the prefix sums computed at construction.
    pub fn total_activation_bytes(&self) -> u64 {
        *self
            .prefix_output_bytes
            .last()
            .expect("prefix sums are non-empty")
    }

    /// Average GPU affinity of the network, weighted by per-layer flops.
    /// Close to 1.0 for dense convolutional networks (VGG), noticeably lower
    /// for depthwise-separable networks (EfficientNet).
    pub fn gpu_affinity(&self) -> f64 {
        let total = self.total_flops().max(1) as f64;
        self.nodes
            .iter()
            .zip(self.costs.iter())
            .map(|(n, c)| n.kind.gpu_affinity() * c.flops as f64)
            .sum::<f64>()
            / total
    }

    /// A content fingerprint of the graph: name, topology and every
    /// cost-model-visible annotation (per-layer category, GPU affinity,
    /// flops, parameter/activation bytes and output shape). Two graphs with
    /// the same fingerprint are indistinguishable to the partitioning
    /// strategies, which plan from exactly these quantities — so plan caches
    /// key on it. Computed once at construction (O(1) to read, so cache
    /// lookups on the streaming hot path cost a hash probe, not a graph
    /// walk) and stable across processes (FNV-1a, no random hash seeds).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Returns a copy of this graph with a different batch size on the input
    /// layer (costs are recomputed).
    ///
    /// # Errors
    ///
    /// Propagates shape errors if a layer cannot handle the new batch.
    pub fn with_batch(&self, batch: usize) -> Result<Self, DnnError> {
        let mut nodes = self.nodes.clone();
        if let LayerKind::Input { shape } = &mut nodes[0].kind {
            *shape = shape.with_batch(batch);
        }
        Self::new(self.name.clone(), nodes)
    }
}

/// Hashes everything the partitioning strategies can observe about a graph.
/// Called once from [`DnnGraph::new`] and stored.
fn fingerprint_of(name: &str, nodes: &[LayerNode], costs: &[NodeCost]) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(name);
    h.write_usize(nodes.len());
    for (node, cost) in nodes.iter().zip(costs.iter()) {
        h.write_str(&node.name);
        h.write_str(node.kind.category());
        h.write_f64(node.kind.gpu_affinity());
        h.write_usize(node.inputs.len());
        for dep in &node.inputs {
            h.write_usize(dep.0);
        }
        h.write_u64(cost.flops);
        h.write_u64(cost.parameter_bytes);
        h.write_u64(cost.output_bytes);
        let dims = cost.output_shape.dims();
        h.write_usize(dims.len());
        for d in dims {
            h.write_usize(d);
        }
    }
    h.finish()
}

/// 64-bit FNV-1a accumulator backing [`DnnGraph::fingerprint`]. `std`'s
/// hashers are randomly seeded per process, so fingerprints roll their own.
///
/// Deliberately duplicates `crates/platform/src/fingerprint.rs`: the two
/// crates are independent (platform models hardware, dnn models networks)
/// and a shared-hasher crate is not worth a new dependency edge for ~40
/// lines of a frozen algorithm. If you change the encoding rules here
/// (e.g. the length prefix), change the platform copy too.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Incremental builder for [`DnnGraph`], used by the model zoo.
///
/// ```
/// use hidp_dnn::{GraphBuilder, LayerKind, Shape, Window};
/// use hidp_tensor::ops::Activation;
///
/// # fn main() -> Result<(), hidp_dnn::DnnError> {
/// let mut b = GraphBuilder::new("tiny");
/// let input = b.input(Shape::map(1, 3, 8, 8));
/// let conv = b.layer("conv1", LayerKind::Conv {
///     out_channels: 4,
///     window: Window::square(3, 1, 1),
///     activation: Activation::Relu,
/// }, &[input]);
/// let _ = conv;
/// let graph = b.build()?;
/// assert_eq!(graph.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<LayerNode>,
}

impl GraphBuilder {
    /// Starts a new graph with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Adds the input placeholder. Must be called exactly once, first.
    pub fn input(&mut self, shape: Shape) -> NodeId {
        self.layer("input", LayerKind::Input { shape }, &[])
    }

    /// Adds a layer fed by `inputs` and returns its id.
    pub fn layer(&mut self, name: impl Into<String>, kind: LayerKind, inputs: &[NodeId]) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(LayerNode {
            id,
            name: name.into(),
            kind,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Number of layers added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no layers have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates the graph, infers shapes and costs, and freezes it.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidGraph`] for structural problems and
    /// [`DnnError::ShapeError`] when a layer cannot handle its input shape.
    pub fn build(self) -> Result<DnnGraph, DnnError> {
        DnnGraph::new(self.name, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Window;
    use hidp_tensor::ops::Activation;

    fn chain_graph() -> DnnGraph {
        let mut b = GraphBuilder::new("chain");
        let input = b.input(Shape::map(1, 3, 8, 8));
        let c1 = b.layer(
            "c1",
            LayerKind::Conv {
                out_channels: 4,
                window: Window::square(3, 1, 1),
                activation: Activation::Relu,
            },
            &[input],
        );
        let p = b.layer(
            "pool",
            LayerKind::MaxPool {
                window: Window::square(2, 2, 0),
            },
            &[c1],
        );
        let f = b.layer("flat", LayerKind::Flatten, &[p]);
        let d = b.layer(
            "fc",
            LayerKind::Dense {
                units: 10,
                activation: Activation::Linear,
            },
            &[f],
        );
        b.layer("sm", LayerKind::Softmax, &[d]);
        b.build().unwrap()
    }

    fn residual_graph() -> DnnGraph {
        let mut b = GraphBuilder::new("res");
        let input = b.input(Shape::map(1, 4, 8, 8));
        let c1 = b.layer(
            "c1",
            LayerKind::Conv {
                out_channels: 4,
                window: Window::square(3, 1, 1),
                activation: Activation::Relu,
            },
            &[input],
        );
        let c2 = b.layer(
            "c2",
            LayerKind::Conv {
                out_channels: 4,
                window: Window::square(3, 1, 1),
                activation: Activation::Linear,
            },
            &[c1],
        );
        let add = b.layer("add", LayerKind::Add, &[c1, c2]);
        b.layer(
            "c3",
            LayerKind::Conv {
                out_channels: 8,
                window: Window::square(3, 1, 1),
                activation: Activation::Relu,
            },
            &[add],
        );
        b.build().unwrap()
    }

    #[test]
    fn chain_shapes_and_costs_are_inferred() {
        let g = chain_graph();
        assert_eq!(g.len(), 6);
        assert_eq!(*g.output_shape(), Shape::vector(1, 10));
        assert_eq!(g.input_shape(), &Shape::map(1, 3, 8, 8));
        assert!(g.total_flops() > 0);
        assert!(g.total_parameters() > 0);
        // Every node in a pure chain is a cut point (except the last).
        assert_eq!(g.cut_points().len(), g.len() - 1);
    }

    #[test]
    fn residual_graph_cut_points_skip_branch_interior() {
        let g = residual_graph();
        let cut_names: Vec<&str> = g
            .cut_points()
            .iter()
            .map(|id| g.node(*id).unwrap().name.as_str())
            .collect();
        // After c1 only c1's output crosses the boundary, so c1 IS a cut
        // point. After c2 both c1's and c2's outputs cross (add needs both),
        // so c2 is not.
        assert!(cut_names.contains(&"input"));
        assert!(cut_names.contains(&"add"));
        assert!(cut_names.contains(&"c1"));
        assert!(!cut_names.contains(&"c2"));
    }

    #[test]
    fn consumers_are_reverse_edges() {
        let g = residual_graph();
        let c1 = NodeId(1);
        let consumer_names: Vec<&str> = g
            .consumers(c1)
            .iter()
            .map(|id| g.node(*id).unwrap().name.as_str())
            .collect();
        assert_eq!(consumer_names, vec!["c2", "add"]);
        // Output node has no consumers.
        assert!(g.consumers(g.output().id).is_empty());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = GraphBuilder::new("dup");
        let input = b.input(Shape::map(1, 1, 4, 4));
        b.layer("x", LayerKind::BatchNorm, &[input]);
        b.layer("x", LayerKind::BatchNorm, &[input]);
        assert!(matches!(b.build(), Err(DnnError::InvalidGraph { .. })));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut b = GraphBuilder::new("bad");
        let input = b.input(Shape::map(1, 1, 4, 4));
        b.layer("add", LayerKind::Add, &[input]);
        assert!(b.build().is_err());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let b = GraphBuilder::new("empty");
        assert!(b.build().is_err());
    }

    #[test]
    fn unknown_node_lookup_errors() {
        let g = chain_graph();
        assert!(g.node(NodeId(100)).is_err());
        assert!(g.cost(NodeId(100)).is_err());
    }

    #[test]
    fn with_batch_scales_flops_linearly() {
        let g = chain_graph();
        let g4 = g.with_batch(4).unwrap();
        assert_eq!(g4.input_shape().batch(), 4);
        assert_eq!(g4.total_flops(), g.total_flops() * 4);
        // Parameters do not change with batch.
        assert_eq!(g4.total_parameter_bytes(), g.total_parameter_bytes());
    }

    #[test]
    fn gpu_affinity_is_within_unit_interval() {
        let g = chain_graph();
        let a = g.gpu_affinity();
        assert!(a > 0.0 && a <= 1.0);
    }

    #[test]
    fn fingerprint_keys_on_content() {
        let g = chain_graph();
        // Deterministic for identical content.
        assert_eq!(g.fingerprint(), g.fingerprint());
        assert_eq!(g.fingerprint(), chain_graph().fingerprint());
        // Different topology and different batch are distinct.
        assert_ne!(g.fingerprint(), residual_graph().fingerprint());
        assert_ne!(g.fingerprint(), g.with_batch(2).unwrap().fingerprint());
        // So is the model name, with everything else identical.
        fn tiny(name: &str) -> DnnGraph {
            let mut b = GraphBuilder::new(name);
            let input = b.input(Shape::map(1, 1, 4, 4));
            b.layer("bn", LayerKind::BatchNorm, &[input]);
            b.build().unwrap()
        }
        assert_eq!(tiny("a").fingerprint(), tiny("a").fingerprint());
        assert_ne!(tiny("a").fingerprint(), tiny("b").fingerprint());
    }

    #[test]
    fn span_sums_match_per_node_accumulation() {
        for g in [chain_graph(), residual_graph()] {
            assert_eq!(g.span_flops(0, g.len() - 1), g.total_flops());
            assert_eq!(
                g.span_output_bytes(0, g.len() - 1),
                g.total_activation_bytes()
            );
            for first in 0..g.len() {
                for last in first..g.len() {
                    let flops: u64 = (first..=last)
                        .map(|p| g.cost(NodeId(p)).unwrap().flops)
                        .sum();
                    let bytes: u64 = (first..=last)
                        .map(|p| g.cost(NodeId(p)).unwrap().output_bytes)
                        .sum();
                    assert_eq!(g.span_flops(first, last), flops);
                    assert_eq!(g.span_output_bytes(first, last), bytes);
                }
            }
        }
    }

    #[test]
    fn shape_error_reports_layer_name() {
        let mut b = GraphBuilder::new("bad-shape");
        let input = b.input(Shape::map(1, 3, 4, 4));
        b.layer(
            "huge-conv",
            LayerKind::Conv {
                out_channels: 8,
                window: Window::square(9, 1, 0),
                activation: Activation::Relu,
            },
            &[input],
        );
        match b.build() {
            Err(DnnError::ShapeError { layer, .. }) => assert_eq!(layer, "huge-conv"),
            other => panic!("expected shape error, got {other:?}"),
        }
    }
}
