//! Data (input-wise) partitioning: splitting one inference request into `σ`
//! parallel sub-model executions.
//!
//! Each part processes a fraction of the input (a batch slice or a spatial
//! slab) and therefore performs roughly that fraction of the network's
//! flops, plus a synchronisation overhead for exchanging halo rows between
//! neighbouring parts after every spatial layer — the
//! computation-to-communication trade-off the paper describes in §II-A.

use crate::graph::DnnGraph;
use crate::layer::Shape;
use crate::DnnError;
use serde::{Deserialize, Serialize};

/// One parallel piece of a data partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPart {
    /// Index of the part.
    pub index: usize,
    /// Fraction of the input assigned to this part (0, 1].
    pub fraction: f64,
    /// Estimated flops for this part (fraction of the total plus halo work).
    pub flops: u64,
    /// Input bytes shipped to the executor of this part.
    pub input_bytes: u64,
    /// Output bytes returned by this part (fraction of the network output).
    pub output_bytes: u64,
    /// Bytes exchanged with neighbouring parts (halo synchronisation).
    pub sync_bytes: u64,
}

/// A complete data-wise partition of one inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPartition {
    /// The parallel parts.
    pub parts: Vec<DataPart>,
    /// Bytes of the final merge performed by the coordinating node.
    pub merge_bytes: u64,
}

impl DataPartition {
    /// Number of parallel parts (`σ` in the paper).
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether there are no parts (never true for valid partitions).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total estimated flops across all parts (≥ the unpartitioned total
    /// because of halo recomputation/synchronisation).
    pub fn total_flops(&self) -> u64 {
        self.parts.iter().map(|p| p.flops).sum()
    }

    /// Total bytes moved for input distribution, synchronisation and merging.
    pub fn total_communication_bytes(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.input_bytes + p.sync_bytes)
            .sum::<u64>()
            + self.merge_bytes
    }
}

/// Returns `parts` equal fractions summing to one.
pub fn even_fractions(parts: usize) -> Vec<f64> {
    vec![1.0 / parts as f64; parts.max(1)]
}

/// Estimated per-image halo traffic (bytes) for one part: one boundary row
/// (top and bottom for interior parts) of every spatially-preserving layer's
/// output.
fn halo_bytes(graph: &DnnGraph, interior: bool) -> u64 {
    let boundary_rows = if interior { 2 } else { 1 };
    graph
        .nodes()
        .iter()
        .filter_map(|n| {
            let cost = graph.cost(n.id).ok()?;
            match &cost.output_shape {
                Shape::Map { n: batch, c, w, .. } => {
                    if matches!(n.kind.category(), "conv" | "dwconv" | "maxpool" | "avgpool") {
                        Some((*batch * *c * *w * 4) as u64 * boundary_rows)
                    } else {
                        None
                    }
                }
                Shape::Vector { .. } => None,
            }
        })
        .sum()
}

/// Builds a data partition of `graph` where part `i` processes `fractions[i]`
/// of the input.
///
/// # Errors
///
/// Returns [`DnnError::InvalidPartition`] when `fractions` is empty, contains
/// non-positive or non-finite values, or does not sum to 1 (within 1e-6).
pub fn data_partition(graph: &DnnGraph, fractions: &[f64]) -> Result<DataPartition, DnnError> {
    if fractions.is_empty() {
        return Err(DnnError::InvalidPartition {
            what: "data partition requires at least one part".into(),
        });
    }
    if fractions.iter().any(|f| !f.is_finite() || *f <= 0.0) {
        return Err(DnnError::InvalidPartition {
            what: format!("fractions must be positive and finite, got {fractions:?}"),
        });
    }
    let sum: f64 = fractions.iter().sum();
    if (sum - 1.0).abs() > 1e-6 {
        return Err(DnnError::InvalidPartition {
            what: format!("fractions must sum to 1, got {sum}"),
        });
    }

    let total_flops = graph.total_flops();
    let input_bytes = graph.input_shape().bytes();
    let output_bytes = graph.output_shape().bytes();
    let parts = fractions
        .iter()
        .enumerate()
        .map(|(index, &fraction)| {
            let single = fractions.len() == 1;
            let interior = !single && index > 0 && index + 1 < fractions.len();
            let sync = if single {
                0
            } else {
                halo_bytes(graph, interior)
            };
            // Halo rows are recomputed by both neighbours; approximate the
            // extra work as the flops equivalent of the exchanged bytes.
            let halo_flops = sync / 4;
            DataPart {
                index,
                fraction,
                flops: (total_flops as f64 * fraction) as u64 + halo_flops,
                input_bytes: (input_bytes as f64 * fraction).ceil() as u64,
                output_bytes: (output_bytes as f64 * fraction).ceil() as u64,
                sync_bytes: sync,
            }
        })
        .collect();
    Ok(DataPartition {
        parts,
        merge_bytes: output_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn even_fractions_sum_to_one() {
        for n in 1..=8 {
            let f = even_fractions(n);
            assert_eq!(f.len(), n);
            assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn single_part_has_no_sync_overhead() {
        let g = zoo::small::tiny_cnn(16, 1, 10);
        let p = data_partition(&g, &[1.0]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.parts[0].sync_bytes, 0);
        assert_eq!(p.parts[0].flops, g.total_flops());
    }

    #[test]
    fn more_parts_means_more_total_work() {
        let g = zoo::vgg19(224, 1);
        let p1 = data_partition(&g, &even_fractions(1)).unwrap();
        let p2 = data_partition(&g, &even_fractions(2)).unwrap();
        let p4 = data_partition(&g, &even_fractions(4)).unwrap();
        assert!(p2.total_flops() > p1.total_flops());
        assert!(p4.total_flops() > p2.total_flops());
        assert!(p4.total_communication_bytes() > p2.total_communication_bytes());
    }

    #[test]
    fn per_part_flops_track_fractions() {
        let g = zoo::small::tiny_cnn(32, 1, 10);
        let p = data_partition(&g, &[0.75, 0.25]).unwrap();
        assert!(p.parts[0].flops > p.parts[1].flops);
        assert!(p.parts[0].input_bytes > p.parts[1].input_bytes);
    }

    #[test]
    fn interior_parts_sync_twice_as_much() {
        let g = zoo::small::tiny_cnn(32, 1, 10);
        let p = data_partition(&g, &even_fractions(3)).unwrap();
        assert_eq!(p.parts[0].sync_bytes * 2, p.parts[1].sync_bytes);
        assert_eq!(p.parts[2].sync_bytes, p.parts[0].sync_bytes);
    }

    #[test]
    fn invalid_fractions_are_rejected() {
        let g = zoo::small::tiny_cnn(16, 1, 10);
        assert!(data_partition(&g, &[]).is_err());
        assert!(data_partition(&g, &[0.5, 0.6]).is_err());
        assert!(data_partition(&g, &[0.5, -0.5, 1.0]).is_err());
        assert!(data_partition(&g, &[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn merge_bytes_equal_network_output() {
        let g = zoo::small::tiny_cnn(16, 1, 10);
        let p = data_partition(&g, &even_fractions(4)).unwrap();
        assert_eq!(p.merge_bytes, g.output_shape().bytes());
    }
}
