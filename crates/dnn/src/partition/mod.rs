//! DNN partitioning primitives.
//!
//! HiDP (and its baselines) decompose an inference request in one of two
//! ways (paper §II-A):
//!
//! * **model partitioning** ([`model`]): contiguous layer blocks executed as
//!   a pipeline, one block per device/processor;
//! * **data partitioning** ([`data`]): the input is split into `σ` pieces and
//!   `σ` copies of the (sub)model run in parallel, exchanging halo data.
//!
//! Both produce *descriptions* (block sizes, flops, transfer bytes) that the
//! cost model and the simulator consume; actually executing a partition on
//! real tensors is the job of [`crate::exec`].

pub mod data;
pub mod model;

pub use data::{data_partition, even_fractions, DataPart, DataPartition};
pub use model::{partition_into_blocks, single_block, LayerBlock, ModelPartition};

use serde::{Deserialize, Serialize};

/// Which of the two partitioning modes a strategy selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Layer-wise blocks executed as a pipeline.
    Model,
    /// Input split into parallel sub-model executions.
    Data,
}

impl std::fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionMode::Model => f.write_str("model"),
            PartitionMode::Data => f.write_str("data"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_displays_lowercase() {
        assert_eq!(PartitionMode::Model.to_string(), "model");
        assert_eq!(PartitionMode::Data.to_string(), "data");
    }
}
