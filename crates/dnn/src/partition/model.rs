//! Model (layer-wise) partitioning: grouping contiguous layers into blocks.
//!
//! Blocks may only end at *cut points* — topological positions where exactly
//! one tensor crosses from the prefix to the suffix of the graph — so that a
//! block hands exactly one activation tensor to its successor.

use crate::graph::{DnnGraph, NodeId};
use crate::DnnError;
use serde::{Deserialize, Serialize};

/// A contiguous group of layers treated as one schedulable unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerBlock {
    /// Index of this block within its partition.
    pub index: usize,
    /// First node (inclusive, position in topological order).
    pub first: usize,
    /// Last node (inclusive, position in topological order).
    pub last: usize,
    /// Total floating point operations of the block.
    pub flops: u64,
    /// Total parameter bytes that must be resident to run the block.
    pub parameter_bytes: u64,
    /// Bytes of the single tensor this block receives from its predecessor
    /// (the graph input size for the first block).
    pub input_bytes: u64,
    /// Bytes of the single tensor this block hands to its successor
    /// (the network output size for the last block).
    pub output_bytes: u64,
    /// Flops-weighted GPU affinity of the block's layers (0..=1).
    pub gpu_affinity: f64,
}

impl LayerBlock {
    /// Number of layers in the block.
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Whether the block is empty (never true for valid blocks).
    pub fn is_empty(&self) -> bool {
        self.last < self.first
    }

    /// Node ids covered by this block.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.first..=self.last).map(NodeId)
    }
}

/// A complete model-wise partition: an ordered pipeline of [`LayerBlock`]s
/// covering the whole graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPartition {
    /// The pipeline stages, in execution order.
    pub blocks: Vec<LayerBlock>,
}

impl ModelPartition {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks (never true for valid partitions).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total flops across all blocks (equals the graph total).
    pub fn total_flops(&self) -> u64 {
        self.blocks.iter().map(|b| b.flops).sum()
    }

    /// Bytes transferred between consecutive blocks (pipeline edges only).
    pub fn transfer_bytes(&self) -> u64 {
        if self.blocks.len() <= 1 {
            0
        } else {
            self.blocks[..self.blocks.len() - 1]
                .iter()
                .map(|b| b.output_bytes)
                .sum()
        }
    }
}

fn block_from_range(graph: &DnnGraph, index: usize, first: usize, last: usize) -> LayerBlock {
    let mut flops = 0u64;
    let mut parameter_bytes = 0u64;
    let mut affinity_weighted = 0.0f64;
    for pos in first..=last {
        let id = NodeId(pos);
        let cost = graph.cost(id).expect("position is within the graph");
        let node = graph.node(id).expect("position is within the graph");
        flops += cost.flops;
        parameter_bytes += cost.parameter_bytes;
        affinity_weighted += node.kind.gpu_affinity() * cost.flops as f64;
    }
    let input_bytes = if first == 0 {
        graph.input_shape().bytes()
    } else {
        graph
            .cost(NodeId(first - 1))
            .expect("predecessor exists")
            .output_bytes
    };
    let output_bytes = graph
        .cost(NodeId(last))
        .expect("position is within the graph")
        .output_bytes;
    let gpu_affinity = if flops == 0 {
        0.5
    } else {
        affinity_weighted / flops as f64
    };
    LayerBlock {
        index,
        first,
        last,
        flops,
        parameter_bytes,
        input_bytes,
        output_bytes,
        gpu_affinity,
    }
}

/// Returns the trivial partition: the whole network as a single block.
pub fn single_block(graph: &DnnGraph) -> ModelPartition {
    ModelPartition {
        blocks: vec![block_from_range(graph, 0, 0, graph.len() - 1)],
    }
}

/// Splits the graph into blocks ending at the given cut points.
///
/// `boundaries` lists the last node of every block except the final one
/// (which always ends at the last layer). Boundaries must be cut points of
/// the graph and strictly increasing.
///
/// # Errors
///
/// Returns [`DnnError::InvalidPartition`] when a boundary is not a cut point,
/// boundaries are not strictly increasing, or a boundary is the last node.
pub fn partition_into_blocks(
    graph: &DnnGraph,
    boundaries: &[NodeId],
) -> Result<ModelPartition, DnnError> {
    let cut_set: std::collections::HashSet<usize> =
        graph.cut_points().iter().map(|id| id.0).collect();
    let mut blocks = Vec::with_capacity(boundaries.len() + 1);
    let mut first = 0usize;
    let mut prev_boundary: Option<usize> = None;
    for boundary in boundaries {
        if boundary.0 >= graph.len() - 1 {
            return Err(DnnError::InvalidPartition {
                what: format!("boundary {boundary} is at or beyond the last layer"),
            });
        }
        if !cut_set.contains(&boundary.0) {
            return Err(DnnError::InvalidPartition {
                what: format!("boundary {boundary} is not a cut point of the graph"),
            });
        }
        if let Some(prev) = prev_boundary {
            if boundary.0 <= prev {
                return Err(DnnError::InvalidPartition {
                    what: format!(
                        "boundaries must be strictly increasing, got {boundary} after n{prev}"
                    ),
                });
            }
        }
        blocks.push(block_from_range(graph, blocks.len(), first, boundary.0));
        first = boundary.0 + 1;
        prev_boundary = Some(boundary.0);
    }
    blocks.push(block_from_range(
        graph,
        blocks.len(),
        first,
        graph.len() - 1,
    ));
    Ok(ModelPartition { blocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn single_block_covers_whole_graph() {
        let g = zoo::small::tiny_cnn(16, 1, 10);
        let p = single_block(&g);
        assert_eq!(p.len(), 1);
        assert_eq!(p.blocks[0].len(), g.len());
        assert_eq!(p.total_flops(), g.total_flops());
        assert_eq!(p.transfer_bytes(), 0);
    }

    #[test]
    fn two_blocks_preserve_total_flops_and_params() {
        let g = zoo::small::tiny_resnet(16, 1, 10);
        // Use the middle cut point.
        let cut = g.cut_points()[g.cut_points().len() / 2];
        let p = partition_into_blocks(&g, &[cut]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.total_flops(), g.total_flops());
        let total_params: u64 = p.blocks.iter().map(|b| b.parameter_bytes).sum();
        assert_eq!(total_params, g.total_parameter_bytes());
        // The transfer between the blocks equals the cut tensor size.
        assert_eq!(p.transfer_bytes(), g.cost(cut).unwrap().output_bytes);
        // Block input/output chaining is consistent.
        assert_eq!(p.blocks[0].output_bytes, p.blocks[1].input_bytes);
    }

    #[test]
    fn non_cut_point_is_rejected() {
        let g = zoo::small::tiny_resnet(16, 1, 10);
        // Find a node that is not a cut point (inside a residual branch).
        let non_cut = (0..g.len() - 1)
            .map(NodeId)
            .find(|id| !g.cut_points().contains(id))
            .expect("residual graph has non-cut nodes");
        assert!(matches!(
            partition_into_blocks(&g, &[non_cut]),
            Err(DnnError::InvalidPartition { .. })
        ));
    }

    #[test]
    fn boundaries_must_increase() {
        let g = zoo::small::tiny_cnn(16, 1, 10);
        let cuts = g.cut_points();
        assert!(partition_into_blocks(&g, &[cuts[2], cuts[1]]).is_err());
        assert!(partition_into_blocks(&g, &[cuts[1], cuts[1]]).is_err());
    }

    #[test]
    fn last_node_cannot_be_a_boundary() {
        let g = zoo::small::tiny_cnn(16, 1, 10);
        assert!(partition_into_blocks(&g, &[NodeId(g.len() - 1)]).is_err());
    }

    #[test]
    fn blocks_on_resnet152_at_every_cut_point() {
        let g = zoo::resnet152(224, 1);
        let cuts: Vec<NodeId> = g.cut_points().to_vec();
        // Partition at every 10th cut point; totals must be preserved.
        let boundaries: Vec<NodeId> = cuts.iter().step_by(10).copied().collect();
        let boundaries = &boundaries[..boundaries.len().saturating_sub(1)];
        let p = partition_into_blocks(&g, boundaries).unwrap();
        assert_eq!(p.total_flops(), g.total_flops());
        assert_eq!(p.len(), boundaries.len() + 1);
    }

    #[test]
    fn gpu_affinity_is_bounded() {
        let g = zoo::efficientnet_b0(224, 1);
        let p = single_block(&g);
        let a = p.blocks[0].gpu_affinity;
        assert!(a > 0.0 && a <= 1.0);
    }
}
