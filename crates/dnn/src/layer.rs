//! Layer descriptors and the per-layer analytical cost model.
//!
//! Each graph node carries a [`LayerKind`]. Given concrete input shapes the
//! layer reports its output shape, floating-point operation count, parameter
//! bytes and activation (output) bytes — the quantities the HiDP system model
//! consumes (paper §III, *System Model*).

use crate::DnnError;
use hidp_tensor::ops::{conv_output_dim, Activation};
use serde::{Deserialize, Serialize};

/// A concrete NCHW shape (batch, channels, height, width) or a rank-2
/// `(batch, features)` shape for post-flatten layers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Shape {
    /// Batch of feature maps: `[n, c, h, w]`.
    Map {
        /// Batch size.
        n: usize,
        /// Channels.
        c: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// Batch of feature vectors: `[n, features]`.
    Vector {
        /// Batch size.
        n: usize,
        /// Feature count.
        features: usize,
    },
}

impl Shape {
    /// Creates a feature-map shape.
    pub fn map(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape::Map { n, c, h, w }
    }

    /// Creates a feature-vector shape.
    pub fn vector(n: usize, features: usize) -> Self {
        Shape::Vector { n, features }
    }

    /// Total number of elements.
    pub fn elements(&self) -> usize {
        match *self {
            Shape::Map { n, c, h, w } => n * c * h * w,
            Shape::Vector { n, features } => n * features,
        }
    }

    /// Size in bytes assuming `f32` elements.
    pub fn bytes(&self) -> u64 {
        self.elements() as u64 * 4
    }

    /// Batch dimension.
    pub fn batch(&self) -> usize {
        match *self {
            Shape::Map { n, .. } => n,
            Shape::Vector { n, .. } => n,
        }
    }

    /// Returns the shape as a dimension vector usable by `hidp-tensor`.
    pub fn dims(&self) -> Vec<usize> {
        match *self {
            Shape::Map { n, c, h, w } => vec![n, c, h, w],
            Shape::Vector { n, features } => vec![n, features],
        }
    }

    /// Returns the same shape with a different batch size.
    pub fn with_batch(&self, batch: usize) -> Self {
        match *self {
            Shape::Map { c, h, w, .. } => Shape::Map { n: batch, c, h, w },
            Shape::Vector { features, .. } => Shape::Vector { n: batch, features },
        }
    }

    /// Returns the same feature-map shape with a different height (used by
    /// spatial data partitioning). Vector shapes are returned unchanged.
    pub fn with_height(&self, height: usize) -> Self {
        match *self {
            Shape::Map { n, c, w, .. } => Shape::Map { n, c, h: height, w },
            Shape::Vector { n, features } => Shape::Vector { n, features },
        }
    }
}

/// 2-D window parameters shared by convolution and pooling layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride along height and width.
    pub stride: (usize, usize),
    /// Zero padding along height and width.
    pub padding: (usize, usize),
}

impl Window {
    /// Creates a square window.
    pub fn square(kernel: usize, stride: usize, padding: usize) -> Self {
        Self {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
        }
    }

    /// Output spatial dimensions for a given input height/width.
    pub fn output_hw(&self, h: usize, w: usize) -> Option<(usize, usize)> {
        Some((
            conv_output_dim(h, self.kernel.0, self.stride.0, self.padding.0)?,
            conv_output_dim(w, self.kernel.1, self.stride.1, self.padding.1)?,
        ))
    }
}

/// The kinds of layers supported by the model zoo and the partitioners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerKind {
    /// Graph input placeholder.
    Input {
        /// Shape of the input tensor.
        shape: Shape,
    },
    /// Standard 2-D convolution (optionally fused with an activation).
    Conv {
        /// Number of output channels.
        out_channels: usize,
        /// Window geometry.
        window: Window,
        /// Fused activation applied after the convolution.
        activation: Activation,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DepthwiseConv {
        /// Window geometry.
        window: Window,
        /// Fused activation.
        activation: Activation,
    },
    /// Max pooling.
    MaxPool {
        /// Window geometry.
        window: Window,
    },
    /// Average pooling.
    AvgPool {
        /// Window geometry.
        window: Window,
    },
    /// Global average pooling (collapses the spatial plane).
    GlobalAvgPool,
    /// Inference-time batch normalisation.
    BatchNorm,
    /// Stand-alone activation layer.
    Activation {
        /// The activation function.
        activation: Activation,
    },
    /// Flattens a feature map to a feature vector.
    Flatten,
    /// Fully connected layer.
    Dense {
        /// Number of output units.
        units: usize,
        /// Fused activation.
        activation: Activation,
    },
    /// Element-wise addition of two inputs (residual connections).
    Add,
    /// Channel-wise concatenation of two or more inputs (Inception modules).
    Concat,
    /// Row-wise softmax over class logits.
    Softmax,
}

impl LayerKind {
    /// Short lowercase category name used in traces and experiment output.
    pub fn category(&self) -> &'static str {
        match self {
            LayerKind::Input { .. } => "input",
            LayerKind::Conv { .. } => "conv",
            LayerKind::DepthwiseConv { .. } => "dwconv",
            LayerKind::MaxPool { .. } => "maxpool",
            LayerKind::AvgPool { .. } => "avgpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::BatchNorm => "batchnorm",
            LayerKind::Activation { .. } => "activation",
            LayerKind::Flatten => "flatten",
            LayerKind::Dense { .. } => "dense",
            LayerKind::Add => "add",
            LayerKind::Concat => "concat",
            LayerKind::Softmax => "softmax",
        }
    }

    /// Number of inputs this layer expects (`None` means "one or more",
    /// used by [`LayerKind::Concat`]).
    pub fn arity(&self) -> Option<usize> {
        match self {
            LayerKind::Input { .. } => Some(0),
            LayerKind::Add => Some(2),
            LayerKind::Concat => None,
            _ => Some(1),
        }
    }

    /// Whether this layer maps well onto GPU-style massively parallel
    /// hardware. Depthwise convolutions, element-wise ops and small dense
    /// layers are comparatively CPU-friendly — the effect the HiDP paper
    /// exploits (§I, "CPU-friendly layers").
    pub fn gpu_affinity(&self) -> f64 {
        match self {
            LayerKind::Conv { .. } => 1.0,
            LayerKind::Dense { .. } => 0.85,
            LayerKind::DepthwiseConv { .. } => 0.45,
            LayerKind::MaxPool { .. } | LayerKind::AvgPool { .. } => 0.6,
            LayerKind::BatchNorm | LayerKind::Activation { .. } => 0.5,
            LayerKind::Add | LayerKind::Concat => 0.4,
            LayerKind::GlobalAvgPool => 0.5,
            LayerKind::Softmax | LayerKind::Flatten | LayerKind::Input { .. } => 0.5,
        }
    }

    /// Computes the output shape for the given input shapes.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeError`] when the inputs are incompatible with
    /// this layer.
    pub fn output_shape(&self, name: &str, inputs: &[Shape]) -> Result<Shape, DnnError> {
        let shape_err = |what: String| DnnError::ShapeError {
            layer: name.to_string(),
            what,
        };
        let single_map = |inputs: &[Shape]| -> Result<(usize, usize, usize, usize), DnnError> {
            match inputs {
                [Shape::Map { n, c, h, w }] => Ok((*n, *c, *h, *w)),
                [other] => Err(shape_err(format!("expected a feature map, got {other:?}"))),
                _ => Err(shape_err(format!("expected 1 input, got {}", inputs.len()))),
            }
        };
        match self {
            LayerKind::Input { shape } => {
                if inputs.is_empty() {
                    Ok(shape.clone())
                } else {
                    Err(shape_err("input layer takes no inputs".into()))
                }
            }
            LayerKind::Conv {
                out_channels,
                window,
                ..
            } => {
                let (n, _c, h, w) = single_map(inputs)?;
                let (oh, ow) = window
                    .output_hw(h, w)
                    .ok_or_else(|| shape_err(format!("window {window:?} does not fit {h}x{w}")))?;
                Ok(Shape::map(n, *out_channels, oh, ow))
            }
            LayerKind::DepthwiseConv { window, .. } => {
                let (n, c, h, w) = single_map(inputs)?;
                let (oh, ow) = window
                    .output_hw(h, w)
                    .ok_or_else(|| shape_err(format!("window {window:?} does not fit {h}x{w}")))?;
                Ok(Shape::map(n, c, oh, ow))
            }
            LayerKind::MaxPool { window } | LayerKind::AvgPool { window } => {
                let (n, c, h, w) = single_map(inputs)?;
                let (oh, ow) = window
                    .output_hw(h, w)
                    .ok_or_else(|| shape_err(format!("window {window:?} does not fit {h}x{w}")))?;
                Ok(Shape::map(n, c, oh, ow))
            }
            LayerKind::GlobalAvgPool => {
                let (n, c, _h, _w) = single_map(inputs)?;
                Ok(Shape::map(n, c, 1, 1))
            }
            LayerKind::BatchNorm | LayerKind::Activation { .. } => match inputs {
                [s] => Ok(s.clone()),
                _ => Err(shape_err(format!("expected 1 input, got {}", inputs.len()))),
            },
            LayerKind::Flatten => {
                let (n, c, h, w) = single_map(inputs)?;
                Ok(Shape::vector(n, c * h * w))
            }
            LayerKind::Dense { units, .. } => match inputs {
                [Shape::Vector { n, .. }] => Ok(Shape::vector(*n, *units)),
                [Shape::Map { n, h, w, .. }] if *h == 1 && *w == 1 => Ok(Shape::vector(*n, *units)),
                [other] => Err(shape_err(format!(
                    "dense expects a feature vector or 1x1 map, got {other:?}"
                ))),
                _ => Err(shape_err(format!("expected 1 input, got {}", inputs.len()))),
            },
            LayerKind::Add => match inputs {
                [a, b] if a == b => Ok(a.clone()),
                [a, b] => Err(shape_err(format!("add inputs differ: {a:?} vs {b:?}"))),
                _ => Err(shape_err(format!(
                    "add expects 2 inputs, got {}",
                    inputs.len()
                ))),
            },
            LayerKind::Concat => {
                if inputs.is_empty() {
                    return Err(shape_err("concat expects at least one input".into()));
                }
                let mut total_c = 0usize;
                let (mut n0, mut h0, mut w0) = (0usize, 0usize, 0usize);
                for (i, s) in inputs.iter().enumerate() {
                    match s {
                        Shape::Map { n, c, h, w } => {
                            if i == 0 {
                                (n0, h0, w0) = (*n, *h, *w);
                            } else if *n != n0 || *h != h0 || *w != w0 {
                                return Err(shape_err(
                                    "concat inputs disagree on batch/height/width".into(),
                                ));
                            }
                            total_c += c;
                        }
                        other => {
                            return Err(shape_err(format!(
                                "concat expects feature maps, got {other:?}"
                            )))
                        }
                    }
                }
                Ok(Shape::map(n0, total_c, h0, w0))
            }
            LayerKind::Softmax => match inputs {
                [Shape::Vector { n, features }] => Ok(Shape::vector(*n, *features)),
                [other] => Err(shape_err(format!(
                    "softmax expects a vector, got {other:?}"
                ))),
                _ => Err(shape_err(format!("expected 1 input, got {}", inputs.len()))),
            },
        }
    }

    /// Floating point operations for this layer given input and output shapes.
    /// Multiply-accumulate counts as two flops.
    pub fn flops(&self, inputs: &[Shape], output: &Shape) -> u64 {
        let out_elems = output.elements() as u64;
        match self {
            LayerKind::Input { .. } | LayerKind::Flatten => 0,
            LayerKind::Conv { window, .. } => {
                let c_in = match inputs.first() {
                    Some(Shape::Map { c, .. }) => *c as u64,
                    _ => 0,
                };
                2 * out_elems * c_in * (window.kernel.0 * window.kernel.1) as u64
            }
            LayerKind::DepthwiseConv { window, .. } => {
                2 * out_elems * (window.kernel.0 * window.kernel.1) as u64
            }
            LayerKind::MaxPool { window } | LayerKind::AvgPool { window } => {
                out_elems * (window.kernel.0 * window.kernel.1) as u64
            }
            LayerKind::GlobalAvgPool => inputs.first().map(|s| s.elements() as u64).unwrap_or(0),
            LayerKind::BatchNorm => 2 * out_elems,
            LayerKind::Activation { .. } => out_elems,
            LayerKind::Dense { .. } => {
                let in_features = match inputs.first() {
                    Some(Shape::Vector { features, .. }) => *features as u64,
                    Some(Shape::Map { c, h, w, .. }) => (c * h * w) as u64,
                    None => 0,
                };
                2 * in_features * out_elems
            }
            LayerKind::Add => out_elems,
            LayerKind::Concat => 0,
            LayerKind::Softmax => 5 * out_elems,
        }
    }

    /// Number of trainable parameters.
    pub fn parameters(&self, inputs: &[Shape]) -> u64 {
        match self {
            LayerKind::Conv {
                out_channels,
                window,
                ..
            } => {
                let c_in = match inputs.first() {
                    Some(Shape::Map { c, .. }) => *c as u64,
                    _ => 0,
                };
                c_in * *out_channels as u64 * (window.kernel.0 * window.kernel.1) as u64
                    + *out_channels as u64
            }
            LayerKind::DepthwiseConv { window, .. } => {
                let c = match inputs.first() {
                    Some(Shape::Map { c, .. }) => *c as u64,
                    _ => 0,
                };
                c * (window.kernel.0 * window.kernel.1) as u64 + c
            }
            LayerKind::BatchNorm => {
                let c = match inputs.first() {
                    Some(Shape::Map { c, .. }) => *c as u64,
                    Some(Shape::Vector { features, .. }) => *features as u64,
                    None => 0,
                };
                4 * c
            }
            LayerKind::Dense { units, .. } => {
                let in_features = match inputs.first() {
                    Some(Shape::Vector { features, .. }) => *features as u64,
                    Some(Shape::Map { c, h, w, .. }) => (c * h * w) as u64,
                    None => 0,
                };
                in_features * *units as u64 + *units as u64
            }
            _ => 0,
        }
    }

    /// Parameter storage in bytes (`f32`).
    pub fn parameter_bytes(&self, inputs: &[Shape]) -> u64 {
        self.parameters(inputs) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(c: usize, hw: usize) -> Shape {
        Shape::map(1, c, hw, hw)
    }

    #[test]
    fn shape_helpers() {
        let s = Shape::map(2, 3, 4, 5);
        assert_eq!(s.elements(), 120);
        assert_eq!(s.bytes(), 480);
        assert_eq!(s.batch(), 2);
        assert_eq!(s.dims(), vec![2, 3, 4, 5]);
        assert_eq!(s.with_batch(4).batch(), 4);
        assert_eq!(s.with_height(7), Shape::map(2, 3, 7, 5));
        let v = Shape::vector(3, 10);
        assert_eq!(v.elements(), 30);
        assert_eq!(v.with_batch(1), Shape::vector(1, 10));
        assert_eq!(v.with_height(9), Shape::vector(3, 10));
    }

    #[test]
    fn conv_output_shape_and_flops() {
        // ResNet stem: 224x224x3 -> 7x7/2 conv, 64 channels -> 112x112x64.
        let kind = LayerKind::Conv {
            out_channels: 64,
            window: Window::square(7, 2, 3),
            activation: Activation::Relu,
        };
        let out = kind.output_shape("stem", &[img(3, 224)]).unwrap();
        assert_eq!(out, Shape::map(1, 64, 112, 112));
        // 2 * 112*112*64 * 3 * 49 = 236,027,904
        assert_eq!(kind.flops(&[img(3, 224)], &out), 236_027_904);
        assert_eq!(kind.parameters(&[img(3, 224)]), 3 * 64 * 49 + 64);
    }

    #[test]
    fn vgg_conv_flops_match_hand_calculation() {
        let kind = LayerKind::Conv {
            out_channels: 64,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        };
        let input = img(64, 224);
        let out = kind
            .output_shape("conv1_2", std::slice::from_ref(&input))
            .unwrap();
        assert_eq!(out, Shape::map(1, 64, 224, 224));
        let expected = 2u64 * 224 * 224 * 64 * 64 * 9;
        assert_eq!(kind.flops(&[input], &out), expected);
    }

    #[test]
    fn depthwise_conv_shapes_and_flops() {
        let kind = LayerKind::DepthwiseConv {
            window: Window::square(3, 1, 1),
            activation: Activation::Swish,
        };
        let input = img(32, 112);
        let out = kind
            .output_shape("dw", std::slice::from_ref(&input))
            .unwrap();
        assert_eq!(out, Shape::map(1, 32, 112, 112));
        assert_eq!(
            kind.flops(std::slice::from_ref(&input), &out),
            2 * 32 * 112 * 112 * 9
        );
        assert_eq!(kind.parameters(&[input]), 32 * 9 + 32);
    }

    #[test]
    fn dense_shape_flops_params() {
        let kind = LayerKind::Dense {
            units: 1000,
            activation: Activation::Linear,
        };
        let input = Shape::vector(1, 4096);
        let out = kind
            .output_shape("fc", std::slice::from_ref(&input))
            .unwrap();
        assert_eq!(out, Shape::vector(1, 1000));
        assert_eq!(
            kind.flops(std::slice::from_ref(&input), &out),
            2 * 4096 * 1000
        );
        assert_eq!(kind.parameters(&[input]), 4096 * 1000 + 1000);
    }

    #[test]
    fn pooling_and_gap_shapes() {
        let pool = LayerKind::MaxPool {
            window: Window::square(2, 2, 0),
        };
        assert_eq!(
            pool.output_shape("pool", &[img(64, 224)]).unwrap(),
            Shape::map(1, 64, 112, 112)
        );
        let gap = LayerKind::GlobalAvgPool;
        assert_eq!(
            gap.output_shape("gap", &[img(2048, 7)]).unwrap(),
            Shape::map(1, 2048, 1, 1)
        );
    }

    #[test]
    fn add_and_concat_shape_rules() {
        let add = LayerKind::Add;
        assert_eq!(
            add.output_shape("add", &[img(64, 56), img(64, 56)])
                .unwrap(),
            img(64, 56)
        );
        assert!(add
            .output_shape("add", &[img(64, 56), img(32, 56)])
            .is_err());
        assert!(add.output_shape("add", &[img(64, 56)]).is_err());

        let concat = LayerKind::Concat;
        assert_eq!(
            concat
                .output_shape("cat", &[img(64, 35), img(96, 35), img(32, 35)])
                .unwrap(),
            img(192, 35)
        );
        assert!(concat
            .output_shape("cat", &[img(64, 35), img(96, 17)])
            .is_err());
        assert!(concat.output_shape("cat", &[]).is_err());
    }

    #[test]
    fn flatten_dense_softmax_chain() {
        let flat = LayerKind::Flatten;
        let v = flat.output_shape("flat", &[img(512, 7)]).unwrap();
        assert_eq!(v, Shape::vector(1, 512 * 49));
        let softmax = LayerKind::Softmax;
        assert_eq!(
            softmax
                .output_shape("sm", &[Shape::vector(1, 1000)])
                .unwrap(),
            Shape::vector(1, 1000)
        );
        assert!(softmax.output_shape("sm", &[img(3, 8)]).is_err());
    }

    #[test]
    fn input_layer_reports_its_shape() {
        let kind = LayerKind::Input {
            shape: Shape::map(1, 3, 224, 224),
        };
        assert_eq!(
            kind.output_shape("input", &[]).unwrap(),
            Shape::map(1, 3, 224, 224)
        );
        assert!(kind.output_shape("input", &[img(3, 8)]).is_err());
        assert_eq!(kind.flops(&[], &Shape::map(1, 3, 224, 224)), 0);
    }

    #[test]
    fn window_too_large_is_reported() {
        let kind = LayerKind::Conv {
            out_channels: 8,
            window: Window::square(7, 1, 0),
            activation: Activation::Relu,
        };
        assert!(kind.output_shape("c", &[img(3, 4)]).is_err());
    }

    #[test]
    fn gpu_affinity_reflects_layer_type() {
        let conv = LayerKind::Conv {
            out_channels: 1,
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        };
        let dw = LayerKind::DepthwiseConv {
            window: Window::square(3, 1, 1),
            activation: Activation::Relu,
        };
        assert!(conv.gpu_affinity() > dw.gpu_affinity());
    }

    #[test]
    fn categories_are_stable() {
        assert_eq!(LayerKind::Softmax.category(), "softmax");
        assert_eq!(LayerKind::Add.category(), "add");
        assert_eq!(
            LayerKind::Input {
                shape: Shape::vector(1, 1)
            }
            .category(),
            "input"
        );
    }

    #[test]
    fn arity_matches_kind() {
        assert_eq!(LayerKind::Add.arity(), Some(2));
        assert_eq!(LayerKind::Concat.arity(), None);
        assert_eq!(LayerKind::Softmax.arity(), Some(1));
        assert_eq!(
            LayerKind::Input {
                shape: Shape::vector(1, 1)
            }
            .arity(),
            Some(0)
        );
    }
}
