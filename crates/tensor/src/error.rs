use std::error::Error;
use std::fmt;

/// Error type for all fallible tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The requested shape does not match the amount of data provided.
    ShapeDataMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A shape with an unsupported rank was supplied.
    InvalidRank {
        /// Rank that the operation expected.
        expected: usize,
        /// Rank that was supplied.
        actual: usize,
    },
    /// Two tensors that must agree on a dimension do not.
    DimensionMismatch {
        /// Human-readable description of which dimension disagreed.
        what: String,
    },
    /// A shape contained a zero-sized dimension where that is not allowed.
    EmptyDimension {
        /// The offending shape.
        shape: Vec<usize>,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// An operation-specific invalid argument (e.g. zero stride).
    InvalidArgument {
        /// Description of the invalid argument.
        what: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape requires {expected} elements but {actual} were provided"
            ),
            TensorError::InvalidRank { expected, actual } => {
                write!(f, "expected a rank-{expected} tensor, got rank {actual}")
            }
            TensorError::DimensionMismatch { what } => {
                write!(f, "dimension mismatch: {what}")
            }
            TensorError::EmptyDimension { shape } => {
                write!(f, "shape {shape:?} contains a zero-sized dimension")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidArgument { what } => write!(f, "invalid argument: {what}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = vec![
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::InvalidRank {
                expected: 4,
                actual: 2,
            },
            TensorError::DimensionMismatch {
                what: "channels".into(),
            },
            TensorError::EmptyDimension { shape: vec![0, 1] },
            TensorError::IndexOutOfBounds {
                index: vec![5],
                shape: vec![2],
            },
            TensorError::InvalidArgument {
                what: "stride must be nonzero".into(),
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
