use crate::{Result, TensorError};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor.
///
/// Most operators in this crate expect rank-4 tensors in **NCHW** layout
/// (batch, channels, height, width); dense layers use rank-2 `(batch,
/// features)`. The type itself is rank-agnostic.
///
/// ```
/// use hidp_tensor::Tensor;
///
/// # fn main() -> Result<(), hidp_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2])?;
/// assert_eq!(t.get(&[0, 0, 1, 1])?, 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` is not the
    /// product of `shape`, and [`TensorError::EmptyDimension`] when `shape`
    /// contains a zero.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        Self::validate_shape(shape)?;
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a tensor filled with zeros.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when `shape` contains a zero.
    pub fn zeros(shape: &[usize]) -> Result<Self> {
        Self::filled(shape, 0.0)
    }

    /// Creates a tensor where every element is `value`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when `shape` contains a zero.
    pub fn filled(shape: &[usize], value: f32) -> Result<Self> {
        Self::validate_shape(shape)?;
        let n: usize = shape.iter().product();
        Ok(Self {
            shape: shape.to_vec(),
            data: vec![value; n],
        })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when `shape` contains a zero.
    pub fn from_fn<F: FnMut(usize) -> f32>(shape: &[usize], f: F) -> Result<Self> {
        Self::validate_shape(shape)?;
        let n: usize = shape.iter().product();
        Ok(Self {
            shape: shape.to_vec(),
            data: (0..n).map(f).collect(),
        })
    }

    /// Creates a tensor with elements drawn uniformly from `[-scale, scale]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyDimension`] when `shape` contains a zero,
    /// or [`TensorError::InvalidArgument`] when `scale` is not finite and
    /// strictly positive.
    pub fn random<R: Rng + ?Sized>(shape: &[usize], scale: f32, rng: &mut R) -> Result<Self> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TensorError::InvalidArgument {
                what: format!("random scale must be finite and positive, got {scale}"),
            });
        }
        Self::validate_shape(shape)?;
        let dist = Uniform::new_inclusive(-scale, scale);
        let n: usize = shape.iter().product();
        Ok(Self {
            shape: shape.to_vec(),
            data: (0..n).map(|_| dist.sample(rng)).collect(),
        })
    }

    fn validate_shape(shape: &[usize]) -> Result<()> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(TensorError::EmptyDimension {
                shape: shape.to_vec(),
            });
        }
        Ok(())
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Converts a multi-dimensional index to a flat offset.
    fn flat_index(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() {
            return Err(TensorError::InvalidRank {
                expected: self.shape.len(),
                actual: index.len(),
            });
        }
        let mut offset = 0usize;
        for (i, (&idx, &dim)) in index.iter().zip(self.shape.iter()).enumerate() {
            if idx >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: index.to_vec(),
                    shape: self.shape.clone(),
                });
            }
            let stride: usize = self.shape[i + 1..].iter().product();
            offset += idx * stride;
        }
        Ok(offset)
    }

    /// Reads a single element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] or [`TensorError::InvalidRank`]
    /// for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        let i = self.flat_index(index)?;
        Ok(self.data[i])
    }

    /// Writes a single element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] or [`TensorError::InvalidRank`]
    /// for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let i = self.flat_index(index)?;
        self.data[i] = value;
        Ok(())
    }

    /// Fast unchecked NCHW accessor used by the operator kernels.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when the tensor is not rank-4 or the index is
    /// out of bounds.
    #[inline]
    pub(crate) fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Fast unchecked NCHW mutator used by the operator kernels.
    #[inline]
    pub(crate) fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w] = v;
    }

    /// Returns a copy reshaped to `shape` without changing element order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the element counts
    /// differ, or [`TensorError::EmptyDimension`] for invalid shapes.
    pub fn reshaped(&self, shape: &[usize]) -> Result<Self> {
        Self::validate_shape(shape)?;
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Flattens a rank-4 tensor to rank-2 `(batch, features)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] when the tensor is not rank-4.
    pub fn flattened(&self) -> Result<Self> {
        if self.rank() != 4 {
            return Err(TensorError::InvalidRank {
                expected: 4,
                actual: self.rank(),
            });
        }
        let n = self.shape[0];
        let features = self.shape[1] * self.shape[2] * self.shape[3];
        self.reshaped(&[n, features])
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::DimensionMismatch {
                what: format!(
                    "max_abs_diff requires equal shapes, got {:?} and {:?}",
                    self.shape, other.shape
                ),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Whether two tensors are equal within `tolerance` per element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DimensionMismatch`] when the shapes differ.
    pub fn approx_eq(&self, other: &Self, tolerance: f32) -> Result<bool> {
        Ok(self.max_abs_diff(other)? <= tolerance)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Index of the largest element along the last axis of a rank-2 tensor,
    /// for each row. Useful for classification argmax.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidRank`] when the tensor is not rank-2.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.rank() != 2 {
            return Err(TensorError::InvalidRank {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn from_vec_round_trips() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.get(&[1, 2]).unwrap(), 6.0);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert_eq!(
            err,
            TensorError::ShapeDataMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn zero_dimension_is_rejected() {
        assert!(matches!(
            Tensor::zeros(&[1, 0, 3]),
            Err(TensorError::EmptyDimension { .. })
        ));
        assert!(matches!(
            Tensor::zeros(&[]),
            Err(TensorError::EmptyDimension { .. })
        ));
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 2, 2, 2]).unwrap();
        t.set(&[1, 0, 1, 0], 7.5).unwrap();
        assert_eq!(t.get(&[1, 0, 1, 0]).unwrap(), 7.5);
        assert_eq!(t.at4(1, 0, 1, 0), 7.5);
    }

    #[test]
    fn out_of_bounds_index_is_reported() {
        let t = Tensor::zeros(&[2, 2]).unwrap();
        assert!(matches!(
            t.get(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            t.get(&[0, 0, 0]),
            Err(TensorError::InvalidRank { .. })
        ));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).unwrap();
        let r = t.reshaped(&[4, 6]).unwrap();
        assert_eq!(r.shape(), &[4, 6]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshaped(&[5, 5]).is_err());
    }

    #[test]
    fn flatten_requires_rank4() {
        let t = Tensor::zeros(&[2, 3, 4, 5]).unwrap();
        assert_eq!(t.flattened().unwrap().shape(), &[2, 60]);
        let t2 = Tensor::zeros(&[2, 3]).unwrap();
        assert!(t2.flattened().is_err());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut r1 = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let a = Tensor::random(&[3, 3], 0.5, &mut r1).unwrap();
        let b = Tensor::random(&[3, 3], 0.5, &mut r2).unwrap();
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn random_rejects_bad_scale() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        assert!(Tensor::random(&[2], 0.0, &mut rng).is_err());
        assert!(Tensor::random(&[2], f32::NAN, &mut rng).is_err());
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 0.5);
        assert!(a.approx_eq(&b, 0.6).unwrap());
        assert!(!a.approx_eq(&b, 0.4).unwrap());
        let c = Tensor::zeros(&[3]).unwrap();
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.3, 0.3, 0.2], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn from_fn_uses_flat_index() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32).unwrap();
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
