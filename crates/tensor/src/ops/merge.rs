use crate::{Result, Tensor, TensorError};

/// Concatenates rank-4 tensors along the channel axis (axis 1).
///
/// All inputs must agree on batch, height and width. Used by Inception
/// modules and by HiDP when merging branch results.
///
/// # Errors
///
/// Returns an error when `inputs` is empty, any input is not rank-4, or the
/// non-channel dimensions disagree.
pub fn concat_channels(inputs: &[&Tensor]) -> Result<Tensor> {
    if inputs.is_empty() {
        return Err(TensorError::InvalidArgument {
            what: "concat_channels requires at least one input".into(),
        });
    }
    for t in inputs {
        if t.rank() != 4 {
            return Err(TensorError::InvalidRank {
                expected: 4,
                actual: t.rank(),
            });
        }
    }
    let (n, h, w) = (
        inputs[0].shape()[0],
        inputs[0].shape()[2],
        inputs[0].shape()[3],
    );
    for t in &inputs[1..] {
        if t.shape()[0] != n || t.shape()[2] != h || t.shape()[3] != w {
            return Err(TensorError::DimensionMismatch {
                what: format!(
                    "concat_channels inputs disagree on non-channel dims: {:?} vs {:?}",
                    inputs[0].shape(),
                    t.shape()
                ),
            });
        }
    }
    let c_total: usize = inputs.iter().map(|t| t.shape()[1]).sum();
    let mut out = Tensor::zeros(&[n, c_total, h, w])?;
    for ni in 0..n {
        let mut c_offset = 0usize;
        for t in inputs {
            let c = t.shape()[1];
            for ci in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        out.set4(ni, c_offset + ci, y, x, t.at4(ni, ci, y, x));
                    }
                }
            }
            c_offset += c;
        }
    }
    Ok(out)
}

/// Element-wise addition of two tensors with identical shapes (ResNet skip
/// connections).
///
/// # Errors
///
/// Returns [`TensorError::DimensionMismatch`] when the shapes differ.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape() != b.shape() {
        return Err(TensorError::DimensionMismatch {
            what: format!(
                "add requires equal shapes, got {:?} and {:?}",
                a.shape(),
                b.shape()
            ),
        });
    }
    let mut out = a.clone();
    for (o, v) in out.data_mut().iter_mut().zip(b.data().iter()) {
        *o += v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_stacks_channels_in_order() {
        let a = Tensor::filled(&[1, 1, 2, 2], 1.0).unwrap();
        let b = Tensor::filled(&[1, 2, 2, 2], 2.0).unwrap();
        let out = concat_channels(&[&a, &b]).unwrap();
        assert_eq!(out.shape(), &[1, 3, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(out.get(&[0, 1, 1, 1]).unwrap(), 2.0);
        assert_eq!(out.get(&[0, 2, 0, 1]).unwrap(), 2.0);
    }

    #[test]
    fn concat_single_input_is_identity() {
        let a = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32).unwrap();
        assert_eq!(concat_channels(&[&a]).unwrap(), a);
    }

    #[test]
    fn concat_rejects_empty_and_mismatched() {
        assert!(concat_channels(&[]).is_err());
        let a = Tensor::zeros(&[1, 1, 2, 2]).unwrap();
        let b = Tensor::zeros(&[1, 1, 3, 2]).unwrap();
        assert!(concat_channels(&[&a, &b]).is_err());
        let c = Tensor::zeros(&[2, 2]).unwrap();
        assert!(concat_channels(&[&c]).is_err());
    }

    #[test]
    fn add_is_elementwise_and_commutative() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0]);
        assert_eq!(add(&a, &b).unwrap(), add(&b, &a).unwrap());
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2]).unwrap();
        let b = Tensor::zeros(&[3]).unwrap();
        assert!(add(&a, &b).is_err());
    }
}
