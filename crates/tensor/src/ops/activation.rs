use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// The activation functions used by the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Identity (no activation).
    #[default]
    Linear,
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6 (MobileNet / EfficientNet style).
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Swish / SiLU: `x * sigmoid(x)` (EfficientNet).
    Swish,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Swish => x / (1.0 + (-x).exp()),
        }
    }

    /// Applies the activation element-wise, returning a new tensor.
    pub fn apply(self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = self.apply_scalar(*v);
        }
        out
    }
}

/// Element-wise ReLU.
pub fn relu(input: &Tensor) -> Tensor {
    Activation::Relu.apply(input)
}

/// Element-wise ReLU6.
pub fn relu6(input: &Tensor) -> Tensor {
    Activation::Relu6.apply(input)
}

/// Element-wise sigmoid.
pub fn sigmoid(input: &Tensor) -> Tensor {
    Activation::Sigmoid.apply(input)
}

/// Element-wise swish (SiLU).
pub fn swish(input: &Tensor) -> Tensor {
    Activation::Swish.apply(input)
}

/// Row-wise softmax over a rank-2 `(batch, classes)` tensor, numerically
/// stabilised by subtracting the row maximum.
///
/// # Errors
///
/// Returns [`TensorError::InvalidRank`] when the input is not rank-2.
pub fn softmax(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 2 {
        return Err(TensorError::InvalidRank {
            expected: 2,
            actual: input.rank(),
        });
    }
    let (rows, cols) = (input.shape()[0], input.shape()[1]);
    let mut out = input.clone();
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu6_clamps_both_sides() {
        let t = Tensor::from_vec(vec![-1.0, 3.0, 9.0], &[3]).unwrap();
        assert_eq!(relu6(&t).data(), &[0.0, 3.0, 6.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let t = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]).unwrap();
        let s = sigmoid(&t);
        assert!(s.data()[0] < 0.01);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 0.99);
    }

    #[test]
    fn swish_matches_definition() {
        let t = Tensor::from_vec(vec![1.5], &[1]).unwrap();
        let expected = 1.5 / (1.0 + (-1.5f32).exp());
        assert!((swish(&t).data()[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]).unwrap();
        let s = softmax(&t).unwrap();
        for r in 0..2 {
            let sum: f32 = s.data()[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Ordering is preserved.
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = softmax(&t).unwrap();
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_rejects_rank4() {
        let t = Tensor::zeros(&[1, 2, 3, 4]).unwrap();
        assert!(softmax(&t).is_err());
    }

    #[test]
    fn activation_default_is_linear() {
        assert_eq!(Activation::default(), Activation::Linear);
        assert_eq!(Activation::Linear.apply_scalar(-3.5), -3.5);
    }
}
