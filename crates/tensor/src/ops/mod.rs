//! DNN operator kernels over [`Tensor`](crate::Tensor).
//!
//! All kernels are straightforward reference implementations: correctness and
//! determinism matter here, raw speed does not (latency numbers in the HiDP
//! reproduction come from the analytical cost model, not from this code).

mod activation;
mod conv;
mod dense;
mod merge;
mod norm;
mod pool;

pub use activation::{relu, relu6, sigmoid, softmax, swish, Activation};
pub use conv::{conv2d, depthwise_conv2d};
pub use dense::dense;
pub use merge::{add, concat_channels};
pub use norm::batch_norm;
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d};

/// Computes the output spatial size of a convolution/pooling window.
///
/// Returns `None` when the window does not fit even once.
pub fn conv_output_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Option<usize> {
    if stride == 0 {
        return None;
    }
    let padded = input + 2 * padding;
    if padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dim_matches_known_cases() {
        // 224x224, k=7, s=2, p=3 -> 112 (ResNet stem).
        assert_eq!(conv_output_dim(224, 7, 2, 3), Some(112));
        // 224, k=3, s=1, p=1 -> 224 (VGG same-conv).
        assert_eq!(conv_output_dim(224, 3, 1, 1), Some(224));
        // 299, k=3, s=2, p=0 -> 149 (Inception stem).
        assert_eq!(conv_output_dim(299, 3, 2, 0), Some(149));
    }

    #[test]
    fn output_dim_rejects_invalid() {
        assert_eq!(conv_output_dim(4, 3, 0, 0), None);
        assert_eq!(conv_output_dim(2, 5, 1, 0), None);
    }
}
