use crate::{Result, Tensor, TensorError};

/// Inference-time batch normalisation over the channel axis of an NCHW tensor.
///
/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, with one
/// `(gamma, beta, mean, var)` quadruple per channel.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or any parameter vector's
/// length differs from the channel count, or when `eps` is not positive.
pub fn batch_norm(
    input: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    mean: &Tensor,
    var: &Tensor,
    eps: f32,
) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: input.rank(),
        });
    }
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(TensorError::InvalidArgument {
            what: format!("batch_norm eps must be positive and finite, got {eps}"),
        });
    }
    let c = input.shape()[1];
    for (name, t) in [
        ("gamma", gamma),
        ("beta", beta),
        ("mean", mean),
        ("var", var),
    ] {
        if t.shape() != [c] {
            return Err(TensorError::DimensionMismatch {
                what: format!(
                    "batch_norm {name} has shape {:?}, expected [{c}]",
                    t.shape()
                ),
            });
        }
    }
    let (n, h, w) = (input.shape()[0], input.shape()[2], input.shape()[3]);
    let mut out = input.clone();
    for ci in 0..c {
        let scale = gamma.data()[ci] / (var.data()[ci] + eps).sqrt();
        let shift = beta.data()[ci] - mean.data()[ci] * scale;
        for ni in 0..n {
            for y in 0..h {
                for x in 0..w {
                    let v = input.at4(ni, ci, y, x);
                    out.set4(ni, ci, y, x, v * scale + shift);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(c: usize, gamma: f32, beta: f32, mean: f32, var: f32) -> [Tensor; 4] {
        [
            Tensor::filled(&[c], gamma).unwrap(),
            Tensor::filled(&[c], beta).unwrap(),
            Tensor::filled(&[c], mean).unwrap(),
            Tensor::filled(&[c], var).unwrap(),
        ]
    }

    #[test]
    fn identity_parameters_preserve_input() {
        let input = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32).unwrap();
        let [g, b, m, v] = params(2, 1.0, 0.0, 0.0, 1.0);
        let out = batch_norm(&input, &g, &b, &m, &v, 1e-9).unwrap();
        assert!(out.approx_eq(&input, 1e-4).unwrap());
    }

    #[test]
    fn normalises_known_statistics() {
        let input = Tensor::filled(&[1, 1, 2, 2], 10.0).unwrap();
        let [g, b, m, v] = params(1, 2.0, 1.0, 10.0, 4.0);
        // (10 - 10) / 2 * 2 + 1 = 1
        let out = batch_norm(&input, &g, &b, &m, &v, 0.0000001).unwrap();
        assert!(out.data().iter().all(|&x| (x - 1.0).abs() < 1e-4));
    }

    #[test]
    fn per_channel_parameters_apply_independently() {
        let input = Tensor::filled(&[1, 2, 1, 1], 1.0).unwrap();
        let gamma = Tensor::from_vec(vec![1.0, 3.0], &[2]).unwrap();
        let beta = Tensor::from_vec(vec![0.0, 0.5], &[2]).unwrap();
        let mean = Tensor::zeros(&[2]).unwrap();
        let var = Tensor::filled(&[2], 1.0).unwrap();
        let out = batch_norm(&input, &gamma, &beta, &mean, &var, 1e-12).unwrap();
        assert!((out.data()[0] - 1.0).abs() < 1e-5);
        assert!((out.data()[1] - 3.5).abs() < 1e-5);
    }

    #[test]
    fn rejects_mismatched_parameter_lengths() {
        let input = Tensor::zeros(&[1, 3, 2, 2]).unwrap();
        let [g, b, m, v] = params(2, 1.0, 0.0, 0.0, 1.0);
        assert!(batch_norm(&input, &g, &b, &m, &v, 1e-5).is_err());
    }

    #[test]
    fn rejects_bad_eps() {
        let input = Tensor::zeros(&[1, 1, 2, 2]).unwrap();
        let [g, b, m, v] = params(1, 1.0, 0.0, 0.0, 1.0);
        assert!(batch_norm(&input, &g, &b, &m, &v, 0.0).is_err());
        assert!(batch_norm(&input, &g, &b, &m, &v, f32::NAN).is_err());
    }
}
