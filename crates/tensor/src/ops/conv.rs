use super::conv_output_dim;
use crate::{Result, Tensor, TensorError};

fn check_rank4(t: &Tensor, what: &str) -> Result<()> {
    if t.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: t.rank(),
        });
    }
    if t.is_empty() {
        return Err(TensorError::InvalidArgument {
            what: format!("{what} must be non-empty"),
        });
    }
    Ok(())
}

/// Standard 2-D convolution in NCHW layout.
///
/// * `input`: `[n, c_in, h, w]`
/// * `weight`: `[c_out, c_in, kh, kw]`
/// * `bias`: optional `[c_out]`
/// * `stride`: `(sh, sw)`, `padding`: `(ph, pw)` (zero padding)
///
/// Returns `[n, c_out, h_out, w_out]`.
///
/// # Errors
///
/// Returns an error when ranks or channel counts disagree, the stride is
/// zero, or the kernel does not fit the padded input.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<Tensor> {
    check_rank4(input, "input")?;
    check_rank4(weight, "weight")?;
    let (n, c_in, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (c_out, wc_in, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc_in != c_in {
        return Err(TensorError::DimensionMismatch {
            what: format!("conv2d input has {c_in} channels but weight expects {wc_in}"),
        });
    }
    if let Some(b) = bias {
        if b.shape() != [c_out] {
            return Err(TensorError::DimensionMismatch {
                what: format!(
                    "conv2d bias shape {:?} does not match {c_out} output channels",
                    b.shape()
                ),
            });
        }
    }
    let h_out = conv_output_dim(h, kh, stride.0, padding.0).ok_or_else(|| {
        TensorError::InvalidArgument {
            what: format!(
                "conv2d window (k={kh}, s={}, p={}) does not fit height {h}",
                stride.0, padding.0
            ),
        }
    })?;
    let w_out = conv_output_dim(w, kw, stride.1, padding.1).ok_or_else(|| {
        TensorError::InvalidArgument {
            what: format!(
                "conv2d window (k={kw}, s={}, p={}) does not fit width {w}",
                stride.1, padding.1
            ),
        }
    })?;

    let mut out = Tensor::zeros(&[n, c_out, h_out, w_out])?;
    for ni in 0..n {
        for co in 0..c_out {
            let b = bias.map(|b| b.data()[co]).unwrap_or(0.0);
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = b;
                    for ci in 0..c_in {
                        for ky in 0..kh {
                            let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at4(ni, ci, iy as usize, ix as usize)
                                    * weight.at4(co, ci, ky, kx);
                            }
                        }
                    }
                    out.set4(ni, co, oy, ox, acc);
                }
            }
        }
    }
    Ok(out)
}

/// Depthwise 2-D convolution (one filter per input channel), as used by
/// EfficientNet / MobileNet blocks.
///
/// * `input`: `[n, c, h, w]`
/// * `weight`: `[c, 1, kh, kw]`
/// * `bias`: optional `[c]`
///
/// # Errors
///
/// Returns an error when the weight channel count does not equal the input
/// channel count or the window does not fit.
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<Tensor> {
    check_rank4(input, "input")?;
    check_rank4(weight, "weight")?;
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (wc, wm, kh, kw) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if wc != c || wm != 1 {
        return Err(TensorError::DimensionMismatch {
            what: format!(
                "depthwise weight shape {:?} does not match {c} input channels",
                weight.shape()
            ),
        });
    }
    if let Some(b) = bias {
        if b.shape() != [c] {
            return Err(TensorError::DimensionMismatch {
                what: format!(
                    "depthwise bias shape {:?} does not match {c} channels",
                    b.shape()
                ),
            });
        }
    }
    let h_out = conv_output_dim(h, kh, stride.0, padding.0).ok_or_else(|| {
        TensorError::InvalidArgument {
            what: "depthwise window does not fit input height".into(),
        }
    })?;
    let w_out = conv_output_dim(w, kw, stride.1, padding.1).ok_or_else(|| {
        TensorError::InvalidArgument {
            what: "depthwise window does not fit input width".into(),
        }
    })?;

    let mut out = Tensor::zeros(&[n, c, h_out, w_out])?;
    for ni in 0..n {
        for ci in 0..c {
            let b = bias.map(|b| b.data()[ci]).unwrap_or(0.0);
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = b;
                    for ky in 0..kh {
                        let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += input.at4(ni, ci, iy as usize, ix as usize)
                                * weight.at4(ci, 0, ky, kx);
                        }
                    }
                    out.set4(ni, ci, oy, ox, acc);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 conv with identity weights acts as a channel-wise copy.
        let input = Tensor::from_fn(&[1, 2, 3, 3], |i| i as f32).unwrap();
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]).unwrap();
        let out = conv2d(&input, &weight, None, (1, 1), (0, 0)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn known_3x3_convolution() {
        // All-ones 3x3 input, all-ones 3x3 kernel, padding 1: centre = 9,
        // edges = 6, corners = 4.
        let input = Tensor::filled(&[1, 1, 3, 3], 1.0).unwrap();
        let weight = Tensor::filled(&[1, 1, 3, 3], 1.0).unwrap();
        let out = conv2d(&input, &weight, None, (1, 1), (1, 1)).unwrap();
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 9.0);
        assert_eq!(out.get(&[0, 0, 0, 1]).unwrap(), 6.0);
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 4.0);
    }

    #[test]
    fn bias_is_added_per_output_channel() {
        let input = Tensor::filled(&[1, 1, 2, 2], 0.0).unwrap();
        let weight = Tensor::filled(&[3, 1, 1, 1], 1.0).unwrap();
        let bias = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let out = conv2d(&input, &weight, Some(&bias), (1, 1), (0, 0)).unwrap();
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(out.get(&[0, 1, 0, 0]).unwrap(), 2.0);
        assert_eq!(out.get(&[0, 2, 1, 1]).unwrap(), 3.0);
    }

    #[test]
    fn stride_reduces_output_size() {
        let input = Tensor::filled(&[1, 1, 8, 8], 1.0).unwrap();
        let weight = Tensor::filled(&[1, 1, 2, 2], 1.0).unwrap();
        let out = conv2d(&input, &weight, None, (2, 2), (0, 0)).unwrap();
        assert_eq!(out.shape(), &[1, 1, 4, 4]);
        assert!(out.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let input = Tensor::zeros(&[1, 3, 4, 4]).unwrap();
        let weight = Tensor::zeros(&[8, 4, 3, 3]).unwrap();
        assert!(matches!(
            conv2d(&input, &weight, None, (1, 1), (1, 1)),
            Err(TensorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bad_bias_is_rejected() {
        let input = Tensor::zeros(&[1, 1, 4, 4]).unwrap();
        let weight = Tensor::zeros(&[2, 1, 3, 3]).unwrap();
        let bias = Tensor::zeros(&[3]).unwrap();
        assert!(conv2d(&input, &weight, Some(&bias), (1, 1), (1, 1)).is_err());
    }

    #[test]
    fn depthwise_applies_per_channel_filters() {
        let input = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32).unwrap();
        // Channel 0 filter multiplies by 1, channel 1 filter by 10.
        let weight = Tensor::from_vec(vec![1.0, 10.0], &[2, 1, 1, 1]).unwrap();
        let out = depthwise_conv2d(&input, &weight, None, (1, 1), (0, 0)).unwrap();
        assert_eq!(out.get(&[0, 0, 0, 0]).unwrap(), 0.0);
        assert_eq!(out.get(&[0, 0, 1, 1]).unwrap(), 3.0);
        assert_eq!(out.get(&[0, 1, 0, 0]).unwrap(), 40.0);
        assert_eq!(out.get(&[0, 1, 1, 1]).unwrap(), 70.0);
    }

    #[test]
    fn depthwise_rejects_wrong_channel_count() {
        let input = Tensor::zeros(&[1, 3, 4, 4]).unwrap();
        let weight = Tensor::zeros(&[4, 1, 3, 3]).unwrap();
        assert!(depthwise_conv2d(&input, &weight, None, (1, 1), (1, 1)).is_err());
    }

    #[test]
    fn depthwise_matches_grouped_standard_conv() {
        // Depthwise conv on 1 channel equals standard conv with c_in = c_out = 1.
        let mut rng = rand::thread_rng();
        let input = Tensor::random(&[1, 1, 6, 6], 1.0, &mut rng).unwrap();
        let weight = Tensor::random(&[1, 1, 3, 3], 1.0, &mut rng).unwrap();
        let a = depthwise_conv2d(&input, &weight, None, (1, 1), (1, 1)).unwrap();
        let b = conv2d(&input, &weight, None, (1, 1), (1, 1)).unwrap();
        assert!(a.approx_eq(&b, 1e-6).unwrap());
    }
}
