use super::conv_output_dim;
use crate::{Result, Tensor, TensorError};

fn pool_prologue(
    input: &Tensor,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: input.rank(),
        });
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let h_out = conv_output_dim(h, kernel.0, stride.0, padding.0).ok_or_else(|| {
        TensorError::InvalidArgument {
            what: format!(
                "pool window (k={}, s={}, p={}) does not fit height {h}",
                kernel.0, stride.0, padding.0
            ),
        }
    })?;
    let w_out = conv_output_dim(w, kernel.1, stride.1, padding.1).ok_or_else(|| {
        TensorError::InvalidArgument {
            what: format!(
                "pool window (k={}, s={}, p={}) does not fit width {w}",
                kernel.1, stride.1, padding.1
            ),
        }
    })?;
    Ok((n, c, h, w, h_out, w_out))
}

/// Max pooling over spatial windows. Padded positions are ignored (treated as
/// `-inf`), matching common framework semantics.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the window does not fit.
pub fn max_pool2d(
    input: &Tensor,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<Tensor> {
    let (n, c, h, w, h_out, w_out) = pool_prologue(input, kernel, stride, padding)?;
    let mut out = Tensor::zeros(&[n, c, h_out, w_out])?;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..kernel.0 {
                        let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kernel.1 {
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            best = best.max(input.at4(ni, ci, iy as usize, ix as usize));
                        }
                    }
                    out.set4(ni, ci, oy, ox, best);
                }
            }
        }
    }
    Ok(out)
}

/// Average pooling over spatial windows. The divisor is the number of valid
/// (non-padded) elements in each window.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the window does not fit.
pub fn avg_pool2d(
    input: &Tensor,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<Tensor> {
    let (n, c, h, w, h_out, w_out) = pool_prologue(input, kernel, stride, padding)?;
    let mut out = Tensor::zeros(&[n, c, h_out, w_out])?;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..h_out {
                for ox in 0..w_out {
                    let mut acc = 0.0f32;
                    let mut count = 0usize;
                    for ky in 0..kernel.0 {
                        let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kernel.1 {
                            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += input.at4(ni, ci, iy as usize, ix as usize);
                            count += 1;
                        }
                    }
                    out.set4(
                        ni,
                        ci,
                        oy,
                        ox,
                        if count > 0 { acc / count as f32 } else { 0.0 },
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Global average pooling: collapses each channel's spatial plane to one value.
/// Output shape is `[n, c, 1, 1]`.
///
/// # Errors
///
/// Returns an error when the input is not rank-4.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: input.rank(),
        });
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let mut out = Tensor::zeros(&[n, c, 1, 1])?;
    let denom = (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let mut acc = 0.0;
            for y in 0..h {
                for x in 0..w {
                    acc += input.at4(ni, ci, y, x);
                }
            }
            out.set4(ni, ci, 0, 0, acc / denom);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_maximum() {
        let input = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32).unwrap();
        let out = max_pool2d(&input, (2, 2), (2, 2), (0, 0)).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn avg_pool_averages_valid_elements() {
        let input = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32).unwrap();
        let out = avg_pool2d(&input, (2, 2), (2, 2), (0, 0)).unwrap();
        assert_eq!(out.data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_padding_uses_valid_count() {
        // With padding 1 and kernel 3, the corner window covers 4 valid cells.
        let input = Tensor::filled(&[1, 1, 3, 3], 2.0).unwrap();
        let out = avg_pool2d(&input, (3, 3), (2, 2), (1, 1)).unwrap();
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert!(out.data().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_is_channel_mean() {
        let input = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32).unwrap();
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2, 1, 1]);
        assert_eq!(out.data(), &[1.5, 5.5]);
    }

    #[test]
    fn pool_rejects_wrong_rank() {
        let t = Tensor::zeros(&[2, 2]).unwrap();
        assert!(max_pool2d(&t, (2, 2), (2, 2), (0, 0)).is_err());
        assert!(avg_pool2d(&t, (2, 2), (2, 2), (0, 0)).is_err());
        assert!(global_avg_pool(&t).is_err());
    }

    #[test]
    fn pool_rejects_oversized_window() {
        let t = Tensor::zeros(&[1, 1, 2, 2]).unwrap();
        assert!(max_pool2d(&t, (5, 5), (1, 1), (0, 0)).is_err());
    }
}
