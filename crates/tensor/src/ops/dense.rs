use crate::{Result, Tensor, TensorError};

/// Fully connected layer: `output = input · weightᵀ + bias`.
///
/// * `input`: `[n, in_features]`
/// * `weight`: `[out_features, in_features]`
/// * `bias`: optional `[out_features]`
///
/// Returns `[n, out_features]`.
///
/// # Errors
///
/// Returns an error when ranks or feature dimensions disagree.
pub fn dense(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    if input.rank() != 2 {
        return Err(TensorError::InvalidRank {
            expected: 2,
            actual: input.rank(),
        });
    }
    if weight.rank() != 2 {
        return Err(TensorError::InvalidRank {
            expected: 2,
            actual: weight.rank(),
        });
    }
    let (n, in_features) = (input.shape()[0], input.shape()[1]);
    let (out_features, w_in) = (weight.shape()[0], weight.shape()[1]);
    if w_in != in_features {
        return Err(TensorError::DimensionMismatch {
            what: format!("dense input has {in_features} features but weight expects {w_in}"),
        });
    }
    if let Some(b) = bias {
        if b.shape() != [out_features] {
            return Err(TensorError::DimensionMismatch {
                what: format!(
                    "dense bias shape {:?} does not match {out_features} output features",
                    b.shape()
                ),
            });
        }
    }

    let mut out = Tensor::zeros(&[n, out_features])?;
    let in_data = input.data();
    let w_data = weight.data();
    let out_data = out.data_mut();
    for row in 0..n {
        for o in 0..out_features {
            let mut acc = bias.map(|b| b.data()[o]).unwrap_or(0.0);
            let in_row = &in_data[row * in_features..(row + 1) * in_features];
            let w_row = &w_data[o * in_features..(o + 1) * in_features];
            for (x, w) in in_row.iter().zip(w_row.iter()) {
                acc += x * w;
            }
            out_data[row * out_features + o] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matches_manual_matmul() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let bias = Tensor::from_vec(vec![0.0, 10.0, 100.0], &[3]).unwrap();
        let out = dense(&input, &weight, Some(&bias)).unwrap();
        assert_eq!(out.shape(), &[2, 3]);
        assert_eq!(out.data(), &[1.0, 12.0, 103.0, 3.0, 14.0, 107.0]);
    }

    #[test]
    fn dense_without_bias() {
        let input = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]).unwrap();
        let weight = Tensor::from_vec(vec![4.0, 5.0], &[1, 2]).unwrap();
        let out = dense(&input, &weight, None).unwrap();
        assert_eq!(out.data(), &[23.0]);
    }

    #[test]
    fn dense_rejects_mismatched_features() {
        let input = Tensor::zeros(&[1, 3]).unwrap();
        let weight = Tensor::zeros(&[2, 4]).unwrap();
        assert!(matches!(
            dense(&input, &weight, None),
            Err(TensorError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dense_rejects_wrong_rank() {
        let input = Tensor::zeros(&[1, 2, 3]).unwrap();
        let weight = Tensor::zeros(&[2, 3]).unwrap();
        assert!(dense(&input, &weight, None).is_err());
    }

    #[test]
    fn dense_rejects_bad_bias() {
        let input = Tensor::zeros(&[1, 2]).unwrap();
        let weight = Tensor::zeros(&[3, 2]).unwrap();
        let bias = Tensor::zeros(&[4]).unwrap();
        assert!(dense(&input, &weight, Some(&bias)).is_err());
    }
}
