//! Spatial and batch splitting primitives for data-wise DNN partitioning.
//!
//! HiDP's data partitioning creates `σ` sub-models that each process a slice
//! of the input and later merge their results. Two flavours are provided:
//!
//! * **batch splitting** — exact for any network, used when a request carries
//!   several images;
//! * **height splitting with halo rows** — the classic MoDNN/DeepThings style
//!   spatial split. Each slice carries `halo` extra rows on each interior
//!   border so that stride-1 "same" convolution chains produce results
//!   identical to whole-image execution inside the core region.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// One spatial slice produced by [`split_height_with_halo`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaloSlice {
    /// The slab data, including halo rows.
    pub tensor: Tensor,
    /// First row (in the original image) owned by this slice.
    pub core_start: usize,
    /// Number of rows owned by this slice.
    pub core_len: usize,
    /// Number of halo rows prepended above the core region.
    pub top_halo: usize,
}

impl HaloSlice {
    /// Extracts the core rows (dropping halo) from a processed slab whose
    /// height still matches the slab height.
    ///
    /// # Errors
    ///
    /// Returns an error when `processed` is not rank-4 or is shorter than
    /// `top_halo + core_len` rows.
    pub fn crop_core(&self, processed: &Tensor) -> Result<Tensor> {
        crop_rows(processed, self.top_halo, self.core_len)
    }
}

/// Extracts `len` rows starting at `start` along the height axis.
///
/// # Errors
///
/// Returns an error when the input is not rank-4 or the range is out of
/// bounds.
pub fn crop_rows(input: &Tensor, start: usize, len: usize) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: input.rank(),
        });
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if len == 0 || start + len > h {
        return Err(TensorError::InvalidArgument {
            what: format!(
                "crop_rows range {start}..{} out of bounds for height {h}",
                start + len
            ),
        });
    }
    let mut out = Tensor::zeros(&[n, c, len, w])?;
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..len {
                for x in 0..w {
                    out.set4(ni, ci, y, x, input.at4(ni, ci, start + y, x));
                }
            }
        }
    }
    Ok(out)
}

/// Splits an NCHW tensor into `parts` height slabs, each padded with up to
/// `halo` extra rows on interior borders.
///
/// The core regions tile the image exactly (the first `height % parts`
/// slices own one extra row).
///
/// # Errors
///
/// Returns an error when the input is not rank-4, `parts` is zero, or
/// `parts` exceeds the image height.
pub fn split_height_with_halo(input: &Tensor, parts: usize, halo: usize) -> Result<Vec<HaloSlice>> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: input.rank(),
        });
    }
    let h = input.shape()[2];
    if parts == 0 {
        return Err(TensorError::InvalidArgument {
            what: "split_height_with_halo requires at least one part".into(),
        });
    }
    if parts > h {
        return Err(TensorError::InvalidArgument {
            what: format!("cannot split height {h} into {parts} parts"),
        });
    }
    let base = h / parts;
    let extra = h % parts;
    let mut slices = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let core_len = base + usize::from(p < extra);
        let slab_start = start.saturating_sub(halo);
        let slab_end = (start + core_len + halo).min(h);
        let tensor = crop_rows(input, slab_start, slab_end - slab_start)?;
        slices.push(HaloSlice {
            tensor,
            core_start: start,
            core_len,
            top_halo: start - slab_start,
        });
        start += core_len;
    }
    Ok(slices)
}

/// Merges processed slabs back into a full-height tensor by stacking each
/// slice's core rows (halo rows are dropped).
///
/// The processed slabs must preserve slab height (true for stride-1 "same"
/// layer chains).
///
/// # Errors
///
/// Returns an error when `slices` is empty, shapes disagree, or the core
/// regions do not tile a contiguous image.
pub fn merge_height(processed: &[(HaloSlice, Tensor)]) -> Result<Tensor> {
    if processed.is_empty() {
        return Err(TensorError::InvalidArgument {
            what: "merge_height requires at least one slice".into(),
        });
    }
    let mut cores: Vec<(usize, Tensor)> = Vec::with_capacity(processed.len());
    for (slice, out) in processed {
        cores.push((slice.core_start, slice.crop_core(out)?));
    }
    cores.sort_by_key(|(start, _)| *start);
    let first = &cores[0].1;
    let (n, c, w) = (first.shape()[0], first.shape()[1], first.shape()[3]);
    let total_h: usize = cores.iter().map(|(_, t)| t.shape()[2]).sum();
    // Validate contiguity.
    let mut expected_start = cores[0].0;
    if expected_start != 0 {
        return Err(TensorError::InvalidArgument {
            what: "merge_height core regions must start at row 0".into(),
        });
    }
    for (start, t) in &cores {
        if t.shape()[0] != n || t.shape()[1] != c || t.shape()[3] != w {
            return Err(TensorError::DimensionMismatch {
                what: "merge_height slices disagree on batch/channel/width".into(),
            });
        }
        if *start != expected_start {
            return Err(TensorError::InvalidArgument {
                what: format!(
                    "merge_height core regions are not contiguous at row {expected_start}"
                ),
            });
        }
        expected_start += t.shape()[2];
    }
    let mut out = Tensor::zeros(&[n, c, total_h, w])?;
    for (start, t) in &cores {
        let hh = t.shape()[2];
        for ni in 0..n {
            for ci in 0..c {
                for y in 0..hh {
                    for x in 0..w {
                        out.set4(ni, ci, start + y, x, t.at4(ni, ci, y, x));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Splits a batch of images into `parts` contiguous sub-batches (exact for
/// every network). The first `batch % parts` sub-batches carry one extra
/// image.
///
/// # Errors
///
/// Returns an error when the input is not rank-4, `parts` is zero, or
/// `parts` exceeds the batch size.
pub fn split_batch(input: &Tensor, parts: usize) -> Result<Vec<Tensor>> {
    if input.rank() != 4 {
        return Err(TensorError::InvalidRank {
            expected: 4,
            actual: input.rank(),
        });
    }
    let n = input.shape()[0];
    if parts == 0 || parts > n {
        return Err(TensorError::InvalidArgument {
            what: format!("cannot split batch of {n} into {parts} parts"),
        });
    }
    let (c, h, w) = (input.shape()[1], input.shape()[2], input.shape()[3]);
    let image_len = c * h * w;
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let count = base + usize::from(p < extra);
        let data = input.data()[start * image_len..(start + count) * image_len].to_vec();
        out.push(Tensor::from_vec(data, &[count, c, h, w])?);
        start += count;
    }
    Ok(out)
}

/// Concatenates sub-batch results back into one batch, in order.
///
/// # Errors
///
/// Returns an error when `parts` is empty or the non-batch shapes disagree.
pub fn merge_batch(parts: &[Tensor]) -> Result<Tensor> {
    if parts.is_empty() {
        return Err(TensorError::InvalidArgument {
            what: "merge_batch requires at least one part".into(),
        });
    }
    let tail = &parts[0].shape()[1..];
    for p in parts {
        if p.rank() != parts[0].rank() || &p.shape()[1..] != tail {
            return Err(TensorError::DimensionMismatch {
                what: "merge_batch parts disagree on per-sample shape".into(),
            });
        }
    }
    let total_n: usize = parts.iter().map(|p| p.shape()[0]).sum();
    let mut shape = vec![total_n];
    shape.extend_from_slice(tail);
    let mut data = Vec::with_capacity(parts.iter().map(Tensor::len).sum());
    for p in parts {
        data.extend_from_slice(p.data());
    }
    Tensor::from_vec(data, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn split_height_cores_tile_image() {
        let input = Tensor::from_fn(&[1, 1, 10, 2], |i| i as f32).unwrap();
        let slices = split_height_with_halo(&input, 3, 1).unwrap();
        assert_eq!(slices.len(), 3);
        let lens: Vec<usize> = slices.iter().map(|s| s.core_len).collect();
        assert_eq!(lens.iter().sum::<usize>(), 10);
        assert_eq!(lens, vec![4, 3, 3]);
        assert_eq!(slices[0].core_start, 0);
        assert_eq!(slices[1].core_start, 4);
        assert_eq!(slices[2].core_start, 7);
        // First slice has no halo above, interior ones do.
        assert_eq!(slices[0].top_halo, 0);
        assert_eq!(slices[1].top_halo, 1);
    }

    #[test]
    fn split_then_merge_identity_is_lossless() {
        let input = Tensor::from_fn(&[2, 3, 9, 4], |i| i as f32 * 0.5).unwrap();
        for parts in 1..=4 {
            for halo in 0..3 {
                let slices = split_height_with_halo(&input, parts, halo).unwrap();
                let processed: Vec<(HaloSlice, Tensor)> = slices
                    .iter()
                    .map(|s| (s.clone(), s.tensor.clone()))
                    .collect();
                let merged = merge_height(&processed).unwrap();
                assert_eq!(merged, input, "parts={parts} halo={halo}");
            }
        }
    }

    #[test]
    fn halo_split_matches_whole_image_convolution() {
        // A stride-1 same conv computed per-slab with halo 1 must equal the
        // whole-image result in every core region.
        let mut rng = rand::thread_rng();
        let input = Tensor::random(&[1, 2, 12, 7], 1.0, &mut rng).unwrap();
        let weight = Tensor::random(&[3, 2, 3, 3], 0.6, &mut rng).unwrap();
        let whole = ops::conv2d(&input, &weight, None, (1, 1), (1, 1)).unwrap();

        let slices = split_height_with_halo(&input, 3, 1).unwrap();
        let processed: Vec<(HaloSlice, Tensor)> = slices
            .iter()
            .map(|s| {
                let out = ops::conv2d(&s.tensor, &weight, None, (1, 1), (1, 1)).unwrap();
                (s.clone(), out)
            })
            .collect();
        let merged = merge_height(&processed).unwrap();
        assert!(merged.approx_eq(&whole, 1e-5).unwrap());
    }

    #[test]
    fn split_height_rejects_bad_arguments() {
        let input = Tensor::zeros(&[1, 1, 4, 4]).unwrap();
        assert!(split_height_with_halo(&input, 0, 1).is_err());
        assert!(split_height_with_halo(&input, 5, 1).is_err());
        let t2 = Tensor::zeros(&[4, 4]).unwrap();
        assert!(split_height_with_halo(&t2, 2, 1).is_err());
    }

    #[test]
    fn crop_rows_validates_range() {
        let input = Tensor::zeros(&[1, 1, 4, 4]).unwrap();
        assert!(crop_rows(&input, 2, 3).is_err());
        assert!(crop_rows(&input, 0, 0).is_err());
        assert_eq!(crop_rows(&input, 1, 2).unwrap().shape(), &[1, 1, 2, 4]);
    }

    #[test]
    fn batch_split_and_merge_round_trip() {
        let input = Tensor::from_fn(&[5, 2, 3, 3], |i| i as f32).unwrap();
        let parts = split_batch(&input, 2).unwrap();
        assert_eq!(parts[0].shape()[0], 3);
        assert_eq!(parts[1].shape()[0], 2);
        let merged = merge_batch(&parts).unwrap();
        assert_eq!(merged, input);
    }

    #[test]
    fn batch_split_rejects_too_many_parts() {
        let input = Tensor::zeros(&[2, 1, 2, 2]).unwrap();
        assert!(split_batch(&input, 3).is_err());
        assert!(split_batch(&input, 0).is_err());
    }

    #[test]
    fn merge_batch_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[1, 1, 2, 2]).unwrap();
        let b = Tensor::zeros(&[1, 1, 3, 2]).unwrap();
        assert!(merge_batch(&[a, b]).is_err());
        assert!(merge_batch(&[]).is_err());
    }

    #[test]
    fn merge_height_rejects_gap() {
        let input = Tensor::from_fn(&[1, 1, 8, 2], |i| i as f32).unwrap();
        let slices = split_height_with_halo(&input, 2, 0).unwrap();
        // Drop the first slice: merge must fail because rows no longer start at 0.
        let processed = vec![(slices[1].clone(), slices[1].tensor.clone())];
        assert!(merge_height(&processed).is_err());
    }
}
