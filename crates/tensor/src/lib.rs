//! # hidp-tensor
//!
//! A minimal, dependency-light NCHW `f32` tensor library with the DNN
//! operators needed by the HiDP reproduction:
//!
//! * convolution (standard and depthwise), pooling, dense layers,
//!   batch-normalisation, common activations, softmax,
//! * channel concatenation and element-wise addition (for Inception /
//!   ResNet style graphs),
//! * **spatial splitting and merging with halo regions**, which is the
//!   primitive behind HiDP's data-wise partitioning.
//!
//! The crate is *not* a performance-oriented inference engine; it exists so
//! the repository can prove that model- and data-partitioned execution
//! produce outputs identical to whole-model execution (the paper's
//! "accuracy is unchanged" claim), and so the examples have something real
//! to run on a laptop.
//!
//! ```
//! use hidp_tensor::{Tensor, ops};
//!
//! # fn main() -> Result<(), hidp_tensor::TensorError> {
//! let input = Tensor::filled(&[1, 3, 8, 8], 1.0)?;
//! let kernel = Tensor::filled(&[4, 3, 3, 3], 0.5)?;
//! let out = ops::conv2d(&input, &kernel, None, (1, 1), (1, 1))?;
//! assert_eq!(out.shape(), &[1, 4, 8, 8]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
pub mod ops;
pub mod split;
mod tensor;

pub use error::TensorError;
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
