//! Equivalence suite for the zero-copy pipeline: Arc-shared graphs/plans,
//! interned labels, reused simulation scratch and summarised traces must be
//! pure cost removals — every metric an `Evaluation` carries (latencies,
//! makespan, energies, cache stats) is bit-identical to the deep-copy
//! pipeline's, serially and under `ParallelSweep` at 1/2/4/8 threads, and
//! label interning round-trips every string unchanged.

use hidp::core::{
    Evaluation, ParallelSweep, PlanCache, Scenario, SimScratch, SweepJob, TraceDetail,
};
use hidp::dnn::zoo::WorkloadModel;
use hidp::platform::{presets, NodeIndex};
use hidp::sim::Label;
use hidp::workloads::{mixes, InferenceRequest};
use hidp::HidpStrategy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The reference pipeline: per-scenario fresh cache, full trace, one-shot
/// (non-scratch) simulation — the observable behaviour of the pre-refactor
/// deep-copy path.
fn reference_evaluation(scenario: &Scenario, leader: NodeIndex) -> Evaluation {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    scenario
        .run(&strategy, &cluster, leader)
        .expect("evaluation succeeds")
}

fn metric_equal(a: &Evaluation, b: &Evaluation) {
    assert_eq!(a.strategy, b.strategy);
    assert_eq!(a.scenario, b.scenario);
    assert_eq!(a.latencies, b.latencies, "{}", a.scenario);
    assert_eq!(a.makespan, b.makespan, "{}", a.scenario);
    assert_eq!(a.total_energy, b.total_energy, "{}", a.scenario);
    assert_eq!(a.dynamic_energy, b.dynamic_energy, "{}", a.scenario);
    assert_eq!(a.report.request_completion, b.report.request_completion);
    assert_eq!(a.report.request_arrival, b.report.request_arrival);
    assert_eq!(a.report.meter, b.report.meter);
}

#[test]
fn summary_and_scratch_pipeline_matches_the_full_one_shot_pipeline() {
    // Mixed shapes: single requests, a cyclic mix, a two-model stream.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let scenarios: Vec<Scenario> = vec![
        Scenario::single(WorkloadModel::EfficientNetB0.graph(1)),
        Scenario::single(WorkloadModel::Vgg19.graph(1)),
        mixes::all_mixes()[4].scenario(0.1, 12),
        InferenceRequest::to_scenario(&hidp::workloads::repeating_stream(
            &[WorkloadModel::InceptionV3, WorkloadModel::ResNet152],
            0.2,
            8,
        )),
    ];

    let cache = PlanCache::new();
    let mut scratch = SimScratch::new();
    for scenario in &scenarios {
        let reference = reference_evaluation(scenario, NodeIndex(1));
        // Same scenario through the zero-copy entry point with a summary
        // trace, a shared cache and a reused scratch.
        let zero_copy = scenario
            .clone()
            .with_trace_detail(TraceDetail::Summary)
            .run_with_cache_in(&strategy, &cluster, NodeIndex(1), &cache, &mut scratch)
            .expect("evaluation succeeds");
        metric_equal(&reference, &zero_copy);
        assert!(zero_copy.report.records.is_empty());
        assert!(!reference.report.records.is_empty());
        // Cache stats attribution is preserved by the borrowed-key probe:
        // both runs saw every request exactly once.
        let ref_stats = reference.plan_cache.expect("stats present");
        let zc_stats = zero_copy.plan_cache.expect("stats present");
        assert_eq!(ref_stats.lookups(), zc_stats.lookups());
    }
}

#[test]
fn full_detail_through_the_zero_copy_path_is_fully_bit_identical() {
    // With TraceDetail::Full even the records (interned labels included)
    // must match the reference pipeline exactly.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let scenario = mixes::all_mixes()[6].scenario(0.15, 9);
    let reference = reference_evaluation(&scenario, NodeIndex(0));
    let cache = PlanCache::new();
    let mut scratch = SimScratch::new();
    let zero_copy = scenario
        .run_with_cache_in(&strategy, &cluster, NodeIndex(0), &cache, &mut scratch)
        .expect("evaluation succeeds");
    assert_eq!(reference.report, zero_copy.report);
    metric_equal(&reference, &zero_copy);
}

#[test]
fn parallel_sweep_is_invariant_across_thread_counts_with_summary_traces() {
    // The zero-copy pipeline under ParallelSweep: every thread count
    // produces the same evaluations as the serial reference, with scratch
    // buffers reused per worker and one shared sharded cache.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let scenarios: Vec<(Scenario, NodeIndex)> = mixes::all_mixes()
        .iter()
        .flat_map(|mix| {
            [NodeIndex(0), NodeIndex(1)]
                .into_iter()
                .map(|leader| {
                    (
                        mix.scenario(0.1, 12)
                            .with_trace_detail(TraceDetail::Summary),
                        leader,
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .map(|(scenario, leader)| SweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: *leader,
        })
        .collect();

    let serial_cache = PlanCache::new();
    let serial: Vec<Evaluation> = ParallelSweep::new(1)
        .run_scenarios(&jobs, &serial_cache)
        .into_iter()
        .map(|r| r.expect("evaluation succeeds"))
        .collect();
    assert!(serial.iter().all(|e| e.report.records.is_empty()));

    for threads in [2, 4, 8] {
        let cache = PlanCache::new();
        let parallel: Vec<Evaluation> = ParallelSweep::new(threads)
            .run_scenarios(&jobs, &cache)
            .into_iter()
            .map(|r| r.expect("evaluation succeeds"))
            .collect();
        assert_eq!(parallel, serial, "{threads} threads diverged from serial");
        // One planner invocation per distinct key, as ever.
        assert_eq!(cache.stats().misses, cache.len() as u64);
    }
}

/// Builds a printable-ish random string (including empties, repeats and
/// multi-byte chars) from a seed — the vendored proptest only samples
/// numeric ranges, so string generation goes through rand.
fn random_label_text(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let alphabet: Vec<char> = ('a'..='z')
        .chain('0'..='9')
        .chain(['@', '/', '-', '_', ' ', 'λ', 'µ', '□'])
        .collect();
    let len = rng.gen_range(0..40usize);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

proptest! {
    #[test]
    fn label_interning_round_trips_every_string(seed in 0u64..100_000) {
        let text = random_label_text(seed);

        // Every construction route yields the same label, and everything
        // observable — the text, Display, equality, ordering, hashing via
        // Borrow<str> — round-trips unchanged.
        let from_str = Label::from(text.as_str());
        let from_string = Label::from(text.clone());
        prop_assert_eq!(from_str.as_str(), text.as_str());
        prop_assert_eq!(format!("{from_str}"), text.clone());
        prop_assert_eq!(&from_str, &from_string);
        prop_assert_eq!(&from_str, &text.as_str());

        // Cloning shares the interned text (pointer-equal), so the one
        // label can fan out to any number of task records for free.
        let cloned = from_str.clone();
        prop_assert!(std::ptr::eq(cloned.as_str(), from_str.as_str()));

        // And a plan built with the string carries it verbatim into the
        // simulator's records (the serde stand-in serialises nothing at
        // run time — the hand-rolled emitters and Display are the output
        // format, and both read `as_str`).
        let mut plan = hidp::sim::ExecutionPlan::new();
        plan.add_compute(
            text.as_str(),
            hidp::platform::ProcessorAddr {
                node: NodeIndex(0),
                processor: hidp::platform::ProcessorIndex(1),
            },
            1_000_000,
            1.0,
            &[],
        );
        let cluster = presets::paper_cluster();
        let report = hidp::sim::simulate(&plan, &cluster).expect("simulates");
        prop_assert_eq!(report.records[0].name.as_str(), text.as_str());
    }
}
