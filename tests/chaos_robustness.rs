//! Robustness contracts for the failure-domain layer.
//!
//! Four families of guarantees pin the chaos machinery:
//!
//! 1. **No-fault pinning** — enabling kill semantics and recovery with no
//!    faults to act on must reproduce the legacy serving and fleet loops
//!    bit for bit, summary field by summary field.
//! 2. **Conservation** — under a seeded fault suite, every recovery policy
//!    keeps the accounting invariant `offered == completed + dropped +
//!    in_flight_at_horizon`; with bounded-but-generous retries and no
//!    deadline abort, nothing is permanently lost.
//! 3. **Edge cases** — a failure at t = 0, a down-flip landing at exactly
//!    an arrival instant, and a double flap inside one backoff window (the
//!    retry itself is killed and must escalate) all resolve
//!    deterministically.
//! 4. **Determinism under faults** — property test: a `FaultPlan`-driven
//!    fleet run is bit-identical at 1/2/4/8 worker threads for arbitrary
//!    suite seeds.

use hidp::core::{
    AdmissionPolicy, FailureMode, FleetScenario, FleetScratch, ParallelSweep, RecoveryPolicy,
    RetryPolicy, RoutingPolicy, ServingRequest, ServingScenario, SlaClass,
};
use hidp::platform::{presets, ClusterTimeline, NodeIndex};
use hidp::workloads::{regional_diurnal_stream, standard_fault_suite, FleetRequest};
use hidp::{HidpStrategy, WorkloadModel};
use proptest::prelude::*;

const LEADER: NodeIndex = NodeIndex(1);

/// Downs every non-leader node of the paper cluster at `down` and restores
/// them at `up` — a full blackout window that reliably kills any
/// distributed in-flight plan.
fn blackout(timeline: ClusterTimeline, down: f64, up: f64) -> ClusterTimeline {
    let nodes = presets::paper_cluster().len();
    let mut t = timeline;
    for n in (0..nodes).filter(|&n| n != LEADER.0) {
        t = t
            .node_down(down, NodeIndex(n))
            .unwrap()
            .node_up(up, NodeIndex(n))
            .unwrap();
    }
    t
}

/// Retry forever-ish with no jitter and no deadline abort: kills can only
/// end in completion (or exhaust ten attempts, which the tests treat as a
/// failure).
fn persistent_retry() -> RecoveryPolicy {
    RecoveryPolicy {
        retry: Some(RetryPolicy {
            max_attempts: 10,
            backoff_base_s: 0.015,
            backoff_factor: 1.0,
            jitter_frac: 0.0,
            seed: 0x5eed,
        }),
        deadline_abort: false,
        shed: false,
        hedge_premium: false,
    }
}

fn fleet_stream(count: usize, seed: u64) -> Vec<FleetRequest> {
    regional_diurnal_stream(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        &[3.0, 1.0],
        2.0,
        10.0,
        20.0,
        count,
        seed,
        &SlaClass::ALL,
    )
}

fn horizon_of(requests: &[FleetRequest]) -> f64 {
    requests
        .iter()
        .map(|r| r.request.arrival)
        .fold(0.0, f64::max)
        .max(1.0)
}

#[test]
fn no_fault_robust_serving_and_fleet_pin_to_legacy() {
    let strategy = HidpStrategy::new();

    // Serving tier: Kill + standard recovery with an empty timeline.
    let cluster = presets::paper_cluster();
    let requests: Vec<ServingRequest> = (0..40)
        .map(|i| {
            ServingRequest::new(WorkloadModel::InceptionV3, i as f64 * 0.05)
                .with_sla(SlaClass::ALL[i % SlaClass::ALL.len()])
        })
        .collect();
    let base = ServingScenario::new(requests.clone())
        .with_policy(AdmissionPolicy::EarliestDeadline)
        .with_max_batch(4)
        .with_max_inflight(Some(2));
    let legacy = base
        .clone()
        .run_streaming(&strategy, &cluster, LEADER)
        .unwrap();
    let robust = base
        .with_failure_mode(FailureMode::Kill)
        .with_recovery(RecoveryPolicy::standard())
        .run_streaming(&strategy, &cluster, LEADER)
        .unwrap();
    assert_eq!(legacy, robust, "serving no-fault robust path diverged");
    let r = robust.robustness;
    assert_eq!(r.offered, requests.len() as u64);
    assert_eq!(r.completed, requests.len() as u64);
    assert_eq!(
        (r.shed, r.aborted, r.lost, r.killed, r.retried, r.hedged),
        (0, 0, 0, 0, 0, 0)
    );
    assert_eq!(r.in_flight_at_horizon, 0);

    // Fleet tier: same pinning across three routing policies.
    let fleet = presets::generated_fleet(3, 2).unwrap();
    let fleet_requests = fleet_stream(90, 11);
    for routing in [
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::Locality,
        RoutingPolicy::StaticHash,
    ] {
        let base = FleetScenario::new(fleet_requests.clone())
            .with_routing(routing)
            .with_max_batch(4)
            .with_max_inflight(Some(2));
        let legacy = base.run_streaming(&strategy, &fleet, LEADER).unwrap();
        let robust = base
            .clone()
            .with_failure_mode(FailureMode::Kill)
            .with_recovery(RecoveryPolicy::standard())
            .run_streaming(&strategy, &fleet, LEADER)
            .unwrap();
        assert_eq!(legacy, robust, "{} no-fault robust path", routing.name());
        assert_eq!(robust.robustness.offered, fleet_requests.len() as u64);
        assert_eq!(robust.robustness.completed, fleet_requests.len() as u64);
        assert_eq!(robust.robustness.dropped(), 0);
    }
}

#[test]
fn accounting_balances_under_every_recovery_policy() {
    let strategy = HidpStrategy::new();
    let fleet = presets::generated_fleet(4, 2).unwrap();
    let requests = fleet_stream(300, 7);
    let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
    let plans = standard_fault_suite(&node_counts, 0xFA57, horizon_of(&requests), LEADER).unwrap();
    let timelines: Vec<ClusterTimeline> = plans.iter().map(|p| p.timeline.clone()).collect();
    let slowdowns: Vec<_> = plans.iter().map(|p| p.slowdowns.clone()).collect();

    let policies: [(&str, RecoveryPolicy); 4] = [
        ("no-recovery", RecoveryPolicy::default()),
        ("standard", RecoveryPolicy::standard()),
        (
            "standard+shed",
            RecoveryPolicy {
                shed: true,
                ..RecoveryPolicy::standard()
            },
        ),
        ("persistent", persistent_retry()),
    ];
    for (name, recovery) in policies {
        let summary = FleetScenario::new(requests.clone())
            .with_routing(RoutingPolicy::LeastLoaded)
            .with_max_batch(4)
            .with_max_inflight(Some(2))
            .with_timelines(timelines.clone())
            .with_slowdowns(slowdowns.clone())
            .with_wan_degradations(plans[0].wan.clone())
            .with_failure_mode(FailureMode::Kill)
            .with_recovery(recovery)
            .run_streaming(&strategy, &fleet, LEADER)
            .unwrap();
        let r = summary.robustness;
        assert_eq!(r.offered, requests.len() as u64, "{name}");
        assert!(r.accounts_for_every_request(), "{name}: {r:?}");
        assert_eq!(
            summary.latency.count as u64, r.completed,
            "{name}: only completed requests contribute latency samples"
        );
    }

    // With generous retries and no deadline abort, kills can only resolve
    // into completions: nothing is permanently dropped.
    let persistent = FleetScenario::new(requests.clone())
        .with_routing(RoutingPolicy::LeastLoaded)
        .with_max_batch(4)
        .with_max_inflight(Some(2))
        .with_timelines(timelines)
        .with_slowdowns(slowdowns)
        .with_failure_mode(FailureMode::Kill)
        .with_recovery(persistent_retry())
        .run_streaming(&strategy, &fleet, LEADER)
        .unwrap();
    let r = persistent.robustness;
    assert_eq!(r.completed, r.offered, "{r:?}");
    assert_eq!((r.lost, r.aborted, r.shed), (0, 0, 0), "{r:?}");
}

#[test]
fn failure_at_time_zero_and_flip_on_arrival_resolve_deterministically() {
    let strategy = HidpStrategy::new();
    let cluster = presets::paper_cluster();
    // A down-flip at exactly t = 0 (before anything is in flight) and a
    // second one at exactly the instant the second wave arrives.
    let timeline = blackout(blackout(ClusterTimeline::new(), 0.0, 0.4), 0.5, 0.9);
    let requests: Vec<ServingRequest> = [0.0, 0.0, 0.5, 0.5, 1.2]
        .iter()
        .map(|&at| ServingRequest::new(WorkloadModel::ResNet152, at).with_sla(SlaClass::BestEffort))
        .collect();
    let scenario = ServingScenario::new(requests.clone())
        .with_timeline(timeline)
        .with_failure_mode(FailureMode::Kill)
        .with_recovery(persistent_retry());

    let first = scenario.run_streaming(&strategy, &cluster, LEADER).unwrap();
    let second = scenario.run_streaming(&strategy, &cluster, LEADER).unwrap();
    assert_eq!(first, second, "edge-case replay must be bit-identical");
    let r = first.robustness;
    assert!(r.accounts_for_every_request(), "{r:?}");
    assert_eq!(r.offered, requests.len() as u64);
    assert_eq!(
        r.completed, r.offered,
        "persistent retries resolve every kill: {r:?}"
    );
    assert_eq!(r.lost, 0, "{r:?}");
}

#[test]
fn double_flap_inside_one_backoff_window_rekills_the_retry() {
    let strategy = HidpStrategy::new();
    let cluster = presets::paper_cluster();
    // Flap 1 kills the original attempt at 0.01; the cluster is whole
    // again at 0.02, so the retry (released at 0.025 with the exact
    // 0.015 s backoff) plans across the full cluster — and flap 2 at 0.03
    // kills it too. The second retry lands during the long outage, plans
    // around the downed nodes, and completes. One request, two kills, two
    // retries, zero losses.
    let timeline = blackout(blackout(ClusterTimeline::new(), 0.01, 0.02), 0.03, 30.0);
    let requests =
        vec![ServingRequest::new(WorkloadModel::ResNet152, 0.0).with_sla(SlaClass::BestEffort)];
    let summary = ServingScenario::new(requests)
        .with_timeline(timeline)
        .with_failure_mode(FailureMode::Kill)
        .with_recovery(persistent_retry())
        .run_streaming(&strategy, &cluster, LEADER)
        .unwrap();
    let r = summary.robustness;
    assert!(r.accounts_for_every_request(), "{r:?}");
    assert_eq!(r.killed, 2, "both flaps must kill an attempt: {r:?}");
    assert_eq!(r.retried, 2, "each kill escalates the attempt count: {r:?}");
    assert_eq!((r.completed, r.lost), (1, 0), "{r:?}");
    assert_eq!(summary.latency.count, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fault_plan_runs_are_bit_identical_across_thread_counts(seed in 0u64..1_000_000) {
        let strategy = HidpStrategy::new();
        let fleet = presets::generated_fleet(4, 2).unwrap();
        let requests = fleet_stream(140, seed ^ 0x9E37);
        let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
        let plans =
            standard_fault_suite(&node_counts, seed, horizon_of(&requests), LEADER).unwrap();
        let scenario = FleetScenario::new(requests)
            .with_routing(RoutingPolicy::LeastLoaded)
            .with_max_batch(4)
            .with_max_inflight(Some(2))
            .with_timelines(plans.iter().map(|p| p.timeline.clone()).collect())
            .with_slowdowns(plans.iter().map(|p| p.slowdowns.clone()).collect())
            .with_wan_degradations(plans[0].wan.clone())
            .with_failure_mode(FailureMode::Kill)
            .with_recovery(RecoveryPolicy::standard());

        let reference = scenario
            .run_streaming_in(
                &strategy,
                &fleet,
                LEADER,
                &ParallelSweep::new(1),
                &mut FleetScratch::new(),
            )
            .expect("fleet chaos run succeeds");
        prop_assert!(reference.robustness.accounts_for_every_request());
        for threads in [2usize, 4, 8] {
            let summary = scenario
                .run_streaming_in(
                    &strategy,
                    &fleet,
                    LEADER,
                    &ParallelSweep::new(threads),
                    &mut FleetScratch::new(),
                )
                .expect("fleet chaos run succeeds");
            prop_assert_eq!(&summary, &reference, "seed {} at {} threads", seed, threads);
        }
    }
}
