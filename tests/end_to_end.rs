//! End-to-end integration tests spanning all workspace crates: the paper's
//! headline claims, cross-crate consistency, and the collaborative runtime.
//! All evaluations go through the unified `Scenario` pipeline.

use hidp::baselines::{
    paper_strategies, DisNetStrategy, GpuOnlyStrategy, ModnnStrategy, OmniBoostStrategy,
};
use hidp::core::runtime::ClusterRuntime;
use hidp::core::{DistributedStrategy, HidpStrategy, Scenario};
use hidp::dnn::zoo::WorkloadModel;
use hidp::platform::{presets, NodeIndex};
use hidp::workloads::{dynamic_scenario, mixes, InferenceRequest};

const LEADER: NodeIndex = NodeIndex(1);

#[test]
fn headline_claim_hidp_has_lowest_latency_per_model() {
    // Fig. 5(a): HiDP achieves the lowest latency for every workload.
    let cluster = presets::paper_cluster();
    for model in WorkloadModel::ALL {
        let scenario = Scenario::single(model.graph(1));
        let hidp = scenario
            .run(&HidpStrategy::new(), &cluster, LEADER)
            .unwrap();
        for baseline in [
            scenario
                .run(&DisNetStrategy::new(), &cluster, LEADER)
                .unwrap(),
            scenario
                .run(&OmniBoostStrategy::new(), &cluster, LEADER)
                .unwrap(),
            scenario
                .run(&ModnnStrategy::new(), &cluster, LEADER)
                .unwrap(),
            scenario
                .run(&GpuOnlyStrategy::new(), &cluster, LEADER)
                .unwrap(),
        ] {
            assert!(
                hidp.latency() <= baseline.latency() * 1.01,
                "{model}: HiDP {:.1} ms vs {} {:.1} ms",
                hidp.latency() * 1e3,
                baseline.strategy,
                baseline.latency() * 1e3
            );
        }
    }
}

#[test]
fn headline_claim_average_improvements_are_substantial() {
    // The abstract claims ~38% lower latency on average vs the baselines.
    // Our analytical platform reproduces the direction with a smaller but
    // still substantial margin; require at least 15% vs the mean baseline.
    let cluster = presets::paper_cluster();
    let mut hidp_total = 0.0;
    let mut baseline_total = 0.0;
    let mut baseline_count = 0.0;
    for model in WorkloadModel::ALL {
        let scenario = Scenario::single(model.graph(1));
        hidp_total += scenario
            .run(&HidpStrategy::new(), &cluster, LEADER)
            .unwrap()
            .latency();
        for strategy in [
            Box::new(DisNetStrategy::new()) as Box<dyn DistributedStrategy>,
            Box::new(OmniBoostStrategy::new()),
            Box::new(ModnnStrategy::new()),
        ] {
            baseline_total += scenario
                .run(strategy.as_ref(), &cluster, LEADER)
                .unwrap()
                .latency();
            baseline_count += 1.0;
        }
    }
    let hidp_avg = hidp_total / WorkloadModel::ALL.len() as f64;
    let baseline_avg = baseline_total / baseline_count;
    let improvement = 1.0 - hidp_avg / baseline_avg;
    assert!(
        improvement > 0.15,
        "average improvement was only {:.0}%",
        improvement * 100.0
    );
}

#[test]
fn throughput_claim_hidp_wins_every_mix() {
    // Fig. 7: HiDP achieves the highest throughput on all eight mixes.
    let cluster = presets::paper_cluster();
    let strategies = paper_strategies();
    for mix in mixes::all_mixes() {
        let scenario = mix.scenario(0.5, 8);
        let throughputs: Vec<f64> = strategies
            .iter()
            .map(|s| {
                scenario
                    .run(s.as_ref(), &cluster, LEADER)
                    .unwrap()
                    .throughput(100.0)
            })
            .collect();
        for (i, throughput) in throughputs.iter().enumerate().skip(1) {
            assert!(
                throughputs[0] >= *throughput * 0.99,
                "{}: HiDP {:.0} vs {} {:.0}",
                mix.name(),
                throughputs[0],
                strategies[i].name(),
                throughput
            );
        }
    }
}

#[test]
fn dynamic_scenario_completes_fastest_with_hidp() {
    // Fig. 6: HiDP finishes the staggered four-model workload first.
    let cluster = presets::paper_cluster();
    let scenario = InferenceRequest::to_scenario(&dynamic_scenario());
    let strategies = paper_strategies();
    let makespans: Vec<f64> = strategies
        .iter()
        .map(|s| scenario.run(s.as_ref(), &cluster, LEADER).unwrap().makespan)
        .collect();
    for (i, makespan) in makespans.iter().enumerate().skip(1) {
        assert!(
            makespans[0] <= makespan * 1.01,
            "HiDP {:.2}s vs {} {:.2}s",
            makespans[0],
            strategies[i].name(),
            makespan
        );
    }
}

#[test]
fn node_scaling_latency_is_monotone_for_hidp() {
    // Fig. 8: more worker nodes never hurt HiDP, and the advantage over the
    // baselines is largest for small clusters.
    let full = presets::paper_cluster();
    let mut previous = f64::INFINITY;
    for nodes in 2..=full.len() {
        let cluster = full.take(nodes).unwrap();
        let mut total = 0.0;
        for model in WorkloadModel::ALL {
            total += Scenario::single(model.graph(1))
                .run(&HidpStrategy::new(), &cluster, LEADER)
                .unwrap()
                .latency();
        }
        assert!(
            total <= previous * 1.01,
            "latency increased when growing to {nodes} nodes"
        );
        previous = total;
    }
}

#[test]
fn cluster_runtime_and_planner_agree_on_the_global_decision() {
    // The message-passing runtime must converge to the same hierarchical
    // decision as the in-process planner.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let runtime = ClusterRuntime::new(cluster.clone(), strategy);
    for model in [WorkloadModel::EfficientNetB0, WorkloadModel::ResNet152] {
        let graph = model.graph(1);
        let outcome = runtime.run_request(&graph, LEADER).unwrap();
        let direct = strategy
            .hierarchical_plan(&graph, &cluster, LEADER)
            .unwrap();
        assert_eq!(outcome.plan.global.mode, direct.global.mode, "{model}");
        assert_eq!(
            outcome.plan.global.shares.len(),
            direct.global.shares.len(),
            "{model}"
        );
    }
}

#[test]
fn every_strategy_plans_for_every_model_and_leader() {
    // Robustness sweep: all strategies × all models × all leaders produce
    // valid, simulatable plans.
    let cluster = presets::paper_cluster();
    for strategy in paper_strategies() {
        for model in WorkloadModel::ALL {
            let scenario = Scenario::single(model.graph(1));
            for leader in 0..cluster.len() {
                let eval = scenario.run(strategy.as_ref(), &cluster, NodeIndex(leader));
                let eval = eval.unwrap_or_else(|e| {
                    panic!(
                        "{} failed for {model} at leader {leader}: {e}",
                        strategy.name()
                    )
                });
                assert!(eval.latency() > 0.0);
                assert!(eval.total_energy.is_finite());
            }
        }
    }
}
