//! The zero-copy contract, enforced with a counting allocator: once a
//! cyclic stream's first warm pass has sized every buffer, the steady-state
//! evaluation path — per-request cached-plan probes through a reused
//! borrowed `PlanKey` plus `simulate_stream_in` into a reused `SimScratch`
//! at `TraceDetail::Summary` — performs **zero** heap allocations, pass
//! after pass. This mirrors what PR 3's `PlannerScratch` test did for cold
//! planning, one layer up.
//!
//! The allocator (`hidp_bench::alloc_count`, shared with the
//! `exp_warm_path` CI gate so both enforce the same definition of
//! "allocation") counts **per thread** — and libtest runs every test on its
//! own thread — so the two tests here (the static warm path and the
//! streaming serving pass) measure independent counters.

use hidp::core::{
    AdmissionPolicy, FleetScenario, FleetScratch, ParallelSweep, PlanCache, PlanKey, RoutingPolicy,
    ServingScenario, ServingScratch, SimScratch, TraceDetail,
};
use hidp::dnn::zoo::WorkloadModel;
use hidp::platform::{presets, NodeIndex};
use hidp::sim::{simulate_stream_detailed, simulate_stream_in, ExecutionPlan};
use hidp::workloads::InferenceRequest;
use hidp::HidpStrategy;
use hidp_bench::alloc_count::{allocations_on_this_thread, CountingAllocator};
use std::sync::Arc;

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_warm_path_allocates_nothing() {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let leader = NodeIndex(1);

    // A cyclic Mix-5-style stream: 60 requests over 3 distinct models.
    let models = [
        WorkloadModel::EfficientNetB0,
        WorkloadModel::InceptionV3,
        WorkloadModel::ResNet152,
    ];
    let requests = hidp::workloads::repeating_stream(&models, 0.05, 60);
    let stream = InferenceRequest::to_stream(&requests);

    // One reusable key, hoisted exactly as Scenario::run_with_cache does.
    let cache = PlanCache::new();
    let mut key = PlanKey::for_run(&strategy, &cluster, leader);

    let mut scratch = SimScratch::new();
    let mut planned: Vec<(f64, Arc<ExecutionPlan>)> = Vec::with_capacity(stream.len());
    let warm_pass = |key: &mut PlanKey,
                     planned: &mut Vec<(f64, Arc<ExecutionPlan>)>,
                     scratch: &mut SimScratch|
     -> f64 {
        planned.clear();
        for (arrival, graph) in &stream {
            key.graph_fingerprint = graph.fingerprint();
            key.batch = graph.input_shape().batch();
            let (plan, _) = cache
                .plan_keyed(key, &strategy, graph, &cluster, leader)
                .expect("planning succeeds");
            planned.push((*arrival, plan));
        }
        let report = simulate_stream_in(scratch, planned, &cluster, TraceDetail::Summary)
            .expect("stream simulates");
        report.makespan
    };

    // First pass: plans the 3 distinct models (allocating — cold planning
    // is allowed to) and sizes every buffer.
    let expected_makespan = warm_pass(&mut key, &mut planned, &mut scratch);

    // Steady state: every subsequent pass — the per-request warm path — must
    // be allocation-free, and bit-identical.
    let before = allocations_on_this_thread();
    for _ in 0..5 {
        let makespan = warm_pass(&mut key, &mut planned, &mut scratch);
        assert_eq!(makespan, expected_makespan);
    }
    let allocations = allocations_on_this_thread() - before;
    assert_eq!(
        allocations, 0,
        "the steady-state warm path must not allocate (got {allocations} \
         allocations over 5 passes of 60 requests)"
    );

    // The zero-alloc path is not a different pipeline: its report matches
    // the one-shot allocating entry point exactly.
    let one_shot =
        simulate_stream_detailed(&planned, &cluster, TraceDetail::Summary).expect("simulates");
    let reused = simulate_stream_in(&mut scratch, &planned, &cluster, TraceDetail::Summary)
        .expect("simulates");
    assert_eq!(*reused, one_shot);
}

#[test]
fn steady_state_streaming_serving_pass_allocates_nothing() {
    // The serving counterpart of the warm-path contract, one layer up: once
    // the first streaming pass has planned the distinct (model, batch-size)
    // graphs and sized the ServingScratch — the indexed queue's arrays, the
    // dispatch model's resource tables, the hoisted PlanKey's strings — a
    // steady-state `run_streaming_with_cache_in` pass over a bursty,
    // batching, windowed workload performs **zero** heap allocations. This
    // is the property that bounds the 1M-request soak's memory: per pass the
    // loop touches only reused buffers and Copy accumulators.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let leader = NodeIndex(1);

    let models = [
        WorkloadModel::EfficientNetB0,
        WorkloadModel::InceptionV3,
        WorkloadModel::ResNet152,
    ];
    let requests = InferenceRequest::to_serving(&hidp::workloads::bursty_stream(
        &models,
        8,
        0.3,
        120,
        &hidp::core::SlaClass::ALL,
    ));
    let scenario = ServingScenario::new(requests)
        .with_label("zero-alloc-soak")
        .with_policy(AdmissionPolicy::Fifo)
        .with_max_batch(8)
        .with_max_inflight(Some(2));

    let cache = PlanCache::new();
    let mut scratch = ServingScratch::new();

    // First pass: cold planning and buffer sizing may allocate freely. The
    // second pass is the first all-hit steady-state pass; it fixes the
    // expected summary (its cache stats — all hits — match every later
    // pass's, while the cold pass records misses).
    scenario
        .run_streaming_with_cache_in(&strategy, &cluster, leader, &cache, &mut scratch)
        .expect("streaming run succeeds");
    let expected = scenario
        .run_streaming_with_cache_in(&strategy, &cluster, leader, &cache, &mut scratch)
        .expect("streaming run succeeds");

    // Steady state: allocation-free and bit-identical, pass after pass.
    let before = allocations_on_this_thread();
    for _ in 0..5 {
        let summary = scenario
            .run_streaming_with_cache_in(&strategy, &cluster, leader, &cache, &mut scratch)
            .expect("streaming run succeeds");
        assert_eq!(summary, expected);
    }
    let allocations = allocations_on_this_thread() - before;
    assert_eq!(
        allocations, 0,
        "the steady-state streaming serving pass must not allocate (got \
         {allocations} allocations over 5 passes of 120 requests)"
    );
}

#[test]
fn steady_state_fleet_pass_allocates_nothing() {
    // The fleet-tier extension of the same contract: once the first pass
    // has planned every cluster's distinct graphs and sized the
    // `FleetScratch` — per-cluster workers (indexed queues, dispatch
    // tables, in-flight heaps, request buffers) plus the router's order
    // index — a steady-state `run_streaming_in` pass at `threads == 1`
    // over a multi-cluster regional workload performs **zero** heap
    // allocations. Per-request fleet state is Copy (latency histograms are
    // fixed arrays), so nothing about routing, per-round backlog snapshots
    // or epoch flips may touch the heap. This is what bounds the
    // 1M-request fleet soak's memory.
    let fleet = presets::generated_fleet(4, 2).unwrap();
    let strategy = HidpStrategy::new();
    let leader = NodeIndex(1);

    let requests = hidp::workloads::regional_diurnal_stream(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        &[3.0, 1.0],
        2.0,
        10.0,
        20.0,
        160,
        9,
        &hidp::core::SlaClass::ALL,
    );
    let scenario = FleetScenario::new(requests)
        .with_label("zero-alloc-fleet")
        .with_routing(RoutingPolicy::LeastLoaded)
        .with_policy(AdmissionPolicy::Fifo)
        .with_max_batch(4)
        .with_max_inflight(Some(2));

    let sweep = ParallelSweep::new(1);
    let mut scratch = FleetScratch::new();
    // Cold pass: plans and sizes every buffer. Second pass fixes the
    // expected summary (all-hit cache stats).
    scenario
        .run_streaming_in(&strategy, &fleet, leader, &sweep, &mut scratch)
        .expect("fleet run succeeds");
    let expected = scenario
        .run_streaming_in(&strategy, &fleet, leader, &sweep, &mut scratch)
        .expect("fleet run succeeds");

    let before = allocations_on_this_thread();
    for _ in 0..5 {
        let summary = scenario
            .run_streaming_in(&strategy, &fleet, leader, &sweep, &mut scratch)
            .expect("fleet run succeeds");
        assert_eq!(summary, expected);
    }
    let allocations = allocations_on_this_thread() - before;
    assert_eq!(
        allocations, 0,
        "the steady-state fleet pass must not allocate (got {allocations} \
         allocations over 5 passes of 160 requests on 4 clusters)"
    );
}

#[test]
fn steady_state_adaptive_drift_pass_allocates_nothing() {
    // The drift extension of the serving contract: with a seeded
    // throttling/contention trace active and the full adaptive loop armed —
    // EWMA estimation on every completion, hysteresis-bounded re-planning
    // on the believed cluster — the steady-state pass still performs
    // **zero** heap allocations. The believed cluster is retained across
    // resets (deactivated, not dropped) so re-derating rescales it in
    // place, and the quantized belief grid keeps the re-planned keys inside
    // the already-populated cache. This is the test-suite twin of the
    // `exp_drift` bounded-memory gate.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();

    let requests = hidp_bench::soak_trace(1_000);
    let horizon = requests
        .iter()
        .map(|r| r.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let trace = hidp_bench::drift_trace(cluster.len(), horizon, 0xD21F7);
    let scenario = hidp_bench::drift_scenario(
        requests,
        "zero-alloc-drift",
        Some(trace),
        Some(hidp::core::AdaptiveConfig::default()),
    );

    let cache = PlanCache::new();
    let mut scratch = ServingScratch::new();
    // Cold pass: plans every (model, batch, believed-fingerprint) key and
    // sizes the estimator arrays. Second pass fixes the expected summary.
    scenario
        .run_streaming_with_cache_in(
            &strategy,
            &cluster,
            hidp_bench::LEADER,
            &cache,
            &mut scratch,
        )
        .expect("drift warm pass succeeds");
    let expected = scenario
        .run_streaming_with_cache_in(
            &strategy,
            &cluster,
            hidp_bench::LEADER,
            &cache,
            &mut scratch,
        )
        .expect("drift pass succeeds");
    assert!(
        expected.drift.replans > 0,
        "the trace must actually trigger re-planning or the contract is \
         vacuous: {:?}",
        expected.drift
    );
    assert!(expected.drift.observations > 0);

    let before = allocations_on_this_thread();
    for _ in 0..5 {
        let summary = scenario
            .run_streaming_with_cache_in(
                &strategy,
                &cluster,
                hidp_bench::LEADER,
                &cache,
                &mut scratch,
            )
            .expect("drift pass succeeds");
        assert_eq!(summary, expected);
    }
    let allocations = allocations_on_this_thread() - before;
    assert_eq!(
        allocations, 0,
        "the steady-state adaptive drift pass must not allocate (got \
         {allocations} allocations over 5 passes of 1000 drifted requests)"
    );
}

#[test]
fn steady_state_recovery_path_allocates_nothing() {
    // The chaos extension of the fleet contract: with kill semantics, a
    // seeded fault suite (flaps, a rack outage, stragglers, WAN windows)
    // and retry + failover all active, the steady-state pass still
    // performs **zero** heap allocations — the pending-batch FIFO, the
    // router's retry heap and the per-epoch plan entries are sized and
    // cached by the first pass and only reused afterwards. This is the
    // test-suite twin of the `exp_chaos` bounded-memory gate.
    let fleet = presets::generated_fleet(4, 2).unwrap();
    let strategy = HidpStrategy::new();

    let requests = hidp_bench::fleet_trace(400, 2, 1.2);
    let horizon = requests
        .iter()
        .map(|r| r.request.arrival)
        .fold(0.0, f64::max)
        .max(1.0);
    let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
    let plans = hidp_bench::chaos_fault_suite(&node_counts, horizon, 0xC4405);
    let scenario = hidp_bench::chaos_scenario(
        requests,
        &plans,
        "zero-alloc-chaos",
        hidp::core::RecoveryPolicy::standard(),
    );

    let sweep = ParallelSweep::new(1);
    let mut scratch = FleetScratch::new();
    // Cold pass: plans every (model, batch, epoch) key and sizes the
    // recovery buffers. Second pass fixes the expected summary.
    scenario
        .run_streaming_in(&strategy, &fleet, hidp_bench::LEADER, &sweep, &mut scratch)
        .expect("chaos warm pass succeeds");
    let expected = scenario
        .run_streaming_in(&strategy, &fleet, hidp_bench::LEADER, &sweep, &mut scratch)
        .expect("chaos pass succeeds");
    assert!(
        expected.robustness.killed > 0,
        "the suite must actually kill work or the contract is vacuous: {:?}",
        expected.robustness
    );
    assert!(expected.robustness.accounts_for_every_request());

    let before = allocations_on_this_thread();
    for _ in 0..5 {
        let summary = scenario
            .run_streaming_in(&strategy, &fleet, hidp_bench::LEADER, &sweep, &mut scratch)
            .expect("chaos pass succeeds");
        assert_eq!(summary, expected);
    }
    let allocations = allocations_on_this_thread() - before;
    assert_eq!(
        allocations, 0,
        "the steady-state recovery path must not allocate (got {allocations} \
         allocations over 5 passes of 400 faulted requests on 4 clusters)"
    );
}
