//! Property suite for the cached cluster fingerprint and the availability
//! timeline.
//!
//! `Cluster::fingerprint` is incrementally maintained — construction hashes
//! the static content once and every availability toggle re-folds only the
//! availability bytes — so the one invariant everything above it (plan-cache
//! keys, fleet routing, epoch bookkeeping) rests on is: **the cached value
//! always equals the full recomputation**, no matter what mutation sequence
//! got the cluster there. The second property pins timeline replay:
//! `epoch_fingerprints` is a pure function of (timeline, cluster) — same
//! inputs, same sequence, call after call — and its tail matches replaying
//! the events by hand through `set_available`.

use hidp::platform::{presets, ClusterTimeline, NodeIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cached_fingerprint_equals_recomputation_under_random_toggles(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cluster = presets::paper_cluster();
        let nodes = cluster.len();
        prop_assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
        for step in 0..rng.gen_range(1..40usize) {
            let node = NodeIndex(rng.gen_range(0..nodes));
            // Mix the entry points: direct toggles, the fail/recover
            // wrappers, and redundant flips (setting the current state).
            match rng.gen_range(0..4u8) {
                0 => cluster.fail_node(node).unwrap(),
                1 => cluster.recover_node(node).unwrap(),
                2 => cluster.set_available(node, rng.gen_range(0..2u8) == 0).unwrap(),
                _ => {
                    let current = cluster.is_available(node);
                    cluster.set_available(node, current).unwrap();
                }
            }
            prop_assert_eq!(
                cluster.fingerprint(),
                cluster.recomputed_fingerprint(),
                "cache diverged at step {} (seed {})",
                step,
                seed
            );
        }
        // Restoring full availability restores the pristine identity.
        for node in 0..nodes {
            cluster.recover_node(NodeIndex(node)).unwrap();
        }
        prop_assert_eq!(cluster.fingerprint(), presets::paper_cluster().fingerprint());
        prop_assert_eq!(cluster.fingerprint(), cluster.recomputed_fingerprint());
    }

    #[test]
    fn epoch_fingerprint_sequences_are_deterministic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = presets::paper_cluster();
        let mut timeline = ClusterTimeline::new();
        for _ in 0..rng.gen_range(0..25usize) {
            let time = rng.gen_range(0.0..50.0f64);
            let node = NodeIndex(rng.gen_range(0..cluster.len()));
            timeline.push_event(time, node, rng.gen_range(0..2u8) == 0).unwrap();
        }

        let first = timeline.epoch_fingerprints(&cluster).unwrap();
        // Pure: the same timeline on the same cluster yields the same
        // sequence on every call, and the probe never mutates its input.
        prop_assert_eq!(&first, &timeline.epoch_fingerprints(&cluster).unwrap());
        prop_assert_eq!(cluster.availability(), &[true; 5][..]);
        prop_assert_eq!(first.len(), timeline.len() + 1);
        prop_assert_eq!(first[0], cluster.fingerprint());

        // The sequence matches a hand replay through set_available, with the
        // cached fingerprint agreeing with the audit recomputation at every
        // epoch.
        let mut working = cluster.clone();
        for (i, event) in timeline.events().iter().enumerate() {
            working.set_available(event.node, event.up).unwrap();
            prop_assert_eq!(first[i + 1], working.fingerprint(), "epoch {} (seed {})", i + 1, seed);
            prop_assert_eq!(first[i + 1], working.recomputed_fingerprint());
        }
    }
}
