//! Equivalence suite for the fleet tier.
//!
//! Two contracts pin `FleetScenario` to the layers beneath it:
//!
//! 1. **Degenerate configuration**: on a one-cluster fleet every routing
//!    policy collapses to "send everything to cluster 0" and the WAN cost
//!    is zero, so the fleet run must agree with
//!    `ServingScenario::run_streaming` on the same requests and serving
//!    config — exactly, on every exactly-tracked aggregate. (Percentiles
//!    are excluded by design: the single-cluster path estimates them with
//!    P² sketches, the fleet with mergeable log-histograms.)
//! 2. **Thread-count invariance**: the sweep only decides *which thread*
//!    advances which cluster, so the whole `FleetSummary` must be
//!    bit-identical at 1/2/4/8 threads, for every routing policy, with
//!    failure timelines in play.

use hidp::core::{
    AdmissionPolicy, FleetScenario, FleetScratch, ParallelSweep, RoutingPolicy, ServingScenario,
    SlaClass,
};
use hidp::platform::{presets, Cluster, ClusterTimeline, Fleet, Link, NodeIndex, WanModel};
use hidp::workloads::{poisson_stream_classed, regional_diurnal_stream, FleetRequest};
use hidp::{HidpStrategy, WorkloadModel};

const LEADER: NodeIndex = NodeIndex(1);

/// Wraps one cluster into a single-region fleet (the WAN is a formality:
/// one site, zero cost everywhere).
fn single_cluster_fleet(cluster: Cluster) -> Fleet {
    let wan = WanModel::uniform(1, Link::new(100.0, 10.0).unwrap()).unwrap();
    Fleet::new(vec![cluster], vec![0], wan).unwrap()
}

#[test]
fn degenerate_single_cluster_fleet_matches_serving_streaming() {
    let cluster = presets::paper_cluster();
    let fleet = single_cluster_fleet(cluster.clone());
    let strategy = HidpStrategy::new();

    let requests = poisson_stream_classed(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        4.0,
        90,
        17,
        &SlaClass::ALL,
    );
    let serving_requests = hidp::workloads::InferenceRequest::to_serving(&requests);
    let fleet_requests: Vec<FleetRequest> = serving_requests
        .iter()
        .map(|&r| FleetRequest::new(r, 0))
        .collect();
    let timeline = ClusterTimeline::new()
        .node_down(1.0, NodeIndex(3))
        .unwrap()
        .node_up(6.0, NodeIndex(3))
        .unwrap();

    for policy in [AdmissionPolicy::Fifo, AdmissionPolicy::EarliestDeadline] {
        let reference = ServingScenario::new(serving_requests.clone())
            .with_policy(policy)
            .with_max_batch(4)
            .with_max_inflight(Some(2))
            .with_timeline(timeline.clone())
            .run_streaming(&strategy, &cluster, LEADER)
            .expect("serving run succeeds");

        for routing in [
            RoutingPolicy::Random { seed: 7 },
            RoutingPolicy::StaticHash,
            RoutingPolicy::LeastLoaded,
            RoutingPolicy::Locality,
        ] {
            let fleet_summary = FleetScenario::new(fleet_requests.clone())
                .with_routing(routing)
                .with_policy(policy)
                .with_max_batch(4)
                .with_max_inflight(Some(2))
                .with_timelines(vec![timeline.clone()])
                .run_streaming(&strategy, &fleet, LEADER)
                .expect("fleet run succeeds");

            let tag = format!("{}/{}", policy.name(), routing.name());
            // Every exactly-tracked aggregate is bit-identical.
            assert_eq!(fleet_summary.requests, reference.requests, "{tag}");
            assert_eq!(fleet_summary.batches, reference.batches, "{tag}");
            assert_eq!(
                fleet_summary.epochs_applied, reference.epochs_applied,
                "{tag}"
            );
            assert_eq!(fleet_summary.makespan, reference.makespan, "{tag}");
            assert_eq!(
                fleet_summary.latency.count, reference.latency.count,
                "{tag}"
            );
            assert_eq!(fleet_summary.latency.mean, reference.latency.mean, "{tag}");
            assert_eq!(
                fleet_summary.mean_queueing_delay, reference.mean_queueing_delay,
                "{tag}"
            );
            assert_eq!(
                fleet_summary.max_queueing_delay, reference.max_queueing_delay,
                "{tag}"
            );
            assert_eq!(
                fleet_summary.deadline_misses, reference.deadline_misses,
                "{tag}"
            );
            assert_eq!(fleet_summary.plan_cache, reference.plan_cache, "{tag}");
            for class in SlaClass::ALL {
                match (fleet_summary.class(class), reference.class(class)) {
                    (Some(f), Some(r)) => {
                        assert_eq!(f.latency.count, r.latency.count, "{tag}/{class:?}");
                        assert_eq!(f.latency.mean, r.latency.mean, "{tag}/{class:?}");
                        assert_eq!(
                            f.mean_queueing_delay, r.mean_queueing_delay,
                            "{tag}/{class:?}"
                        );
                        assert_eq!(f.deadline_misses, r.deadline_misses, "{tag}/{class:?}");
                    }
                    (None, None) => {}
                    (f, r) => panic!("{tag}/{class:?}: class presence differs: {f:?} vs {r:?}"),
                }
            }
            // One cluster ⇒ no WAN cost and trivial routing balance.
            assert_eq!(fleet_summary.clusters, 1, "{tag}");
            assert_eq!(fleet_summary.mean_wan_round_trip, 0.0, "{tag}");
            assert_eq!(
                fleet_summary.busiest_cluster_requests, reference.requests,
                "{tag}"
            );
        }
    }
}

#[test]
fn fleet_run_is_bit_identical_at_every_thread_count() {
    let fleet = presets::generated_fleet(8, 3).unwrap();
    let strategy = HidpStrategy::new();
    let requests = regional_diurnal_stream(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        &[3.0, 1.0, 1.5],
        2.0,
        14.0,
        30.0,
        400,
        23,
        &SlaClass::ALL,
    );
    // Give two clusters a failure window so epoch flips are in play.
    let mut timelines = vec![ClusterTimeline::new(); 8];
    timelines[2] = ClusterTimeline::new()
        .node_down(3.0, NodeIndex(0))
        .unwrap()
        .node_up(12.0, NodeIndex(0))
        .unwrap();
    timelines[5] = ClusterTimeline::new().node_down(6.0, NodeIndex(2)).unwrap();

    for routing in [
        RoutingPolicy::Random { seed: 3 },
        RoutingPolicy::StaticHash,
        RoutingPolicy::LeastLoaded,
        RoutingPolicy::Locality,
    ] {
        let scenario = FleetScenario::new(requests.clone())
            .with_routing(routing)
            .with_policy(AdmissionPolicy::EarliestDeadline)
            .with_max_batch(4)
            .with_max_inflight(Some(2))
            .with_timelines(timelines.clone())
            .with_round_seconds(2.0);
        let reference = scenario
            .run_streaming_in(
                &strategy,
                &fleet,
                LEADER,
                &ParallelSweep::new(1),
                &mut FleetScratch::new(),
            )
            .expect("fleet run succeeds");
        assert_eq!(reference.requests, requests.len(), "{}", routing.name());
        for threads in [2usize, 4, 8] {
            let mut scratch = FleetScratch::new();
            let summary = scenario
                .run_streaming_in(
                    &strategy,
                    &fleet,
                    LEADER,
                    &ParallelSweep::new(threads),
                    &mut scratch,
                )
                .expect("fleet run succeeds");
            assert_eq!(
                summary,
                reference,
                "{} at {threads} threads",
                routing.name()
            );
        }
    }
}

#[test]
fn reused_scratch_is_bit_identical_to_fresh_scratch() {
    // The scratch is pure working memory: running scenario B after scenario
    // A in the same scratch must give the same summary as a cold run, even
    // when B needs fewer clusters than A touched.
    let strategy = HidpStrategy::new();
    let big = presets::generated_fleet(6, 2).unwrap();
    let small = presets::generated_fleet(3, 1).unwrap();
    let requests = regional_diurnal_stream(
        &[WorkloadModel::EfficientNetB0, WorkloadModel::ResNet152],
        &[2.0, 1.0],
        1.0,
        8.0,
        20.0,
        150,
        5,
        &SlaClass::ALL,
    );
    let big_scenario = FleetScenario::new(requests.clone()).with_max_batch(2);
    let small_requests: Vec<FleetRequest> = requests
        .iter()
        .map(|fr| FleetRequest::new(fr.request, 0))
        .collect();
    let small_scenario = FleetScenario::new(small_requests)
        .with_routing(RoutingPolicy::Locality)
        .with_max_batch(2);

    let sweep = ParallelSweep::new(1);
    let mut scratch = FleetScratch::new();
    let big_cold = big_scenario
        .run_streaming_in(&strategy, &big, LEADER, &sweep, &mut scratch)
        .unwrap();
    let small_reused = small_scenario
        .run_streaming_in(&strategy, &small, LEADER, &sweep, &mut scratch)
        .unwrap();
    let big_reused = big_scenario
        .run_streaming_in(&strategy, &big, LEADER, &sweep, &mut scratch)
        .unwrap();

    let small_cold = small_scenario
        .run_streaming(&strategy, &small, LEADER)
        .unwrap();
    // Cache warmth differs between cold and reused runs; everything else
    // must not.
    assert_eq!(
        small_reused.plan_cache.hits + small_reused.plan_cache.misses,
        small_cold.plan_cache.hits + small_cold.plan_cache.misses
    );
    let strip = |mut s: hidp::FleetSummary| {
        s.plan_cache = hidp::core::PlanCacheStats::default();
        s
    };
    assert_eq!(strip(small_reused), strip(small_cold));
    assert_eq!(strip(big_reused), strip(big_cold));
}
