//! Contracts for the adaptive drift loop.
//!
//! Four families of guarantees pin the estimation/re-planning machinery:
//!
//! 1. **Convergence** — under a persistent straggler window the per-node
//!    EWMA effective-rate estimate tracks the injected slowdown factor
//!    within a bounded number of completions, and nodes that do not drift
//!    keep their estimate at exactly 1.0.
//! 2. **No-drift pinning** — arming estimation with nothing drifting must
//!    reproduce the legacy serving and fleet loops bit for bit; observing
//!    ratios of 1.0 never leaves the hysteresis band.
//! 3. **Bounded re-planning** — under a seeded drift trace the loop
//!    re-plans at least once and never more than `max_replans`, and the
//!    whole run replays bit-identically.
//! 4. **Determinism under drift** — property test: a drifting adaptive
//!    fleet run is bit-identical at 1/2/4/8 worker threads for arbitrary
//!    trace seeds.

use hidp::core::{
    AdaptiveConfig, AdmissionPolicy, FleetScenario, FleetScratch, ParallelSweep, RoutingPolicy,
    ServingRequest, ServingScenario, SlaClass,
};
use hidp::platform::{presets, NodeIndex, SlowdownWindow};
use hidp::workloads::{
    regional_diurnal_stream, standard_drift_suite, DriftPlanConfig, FleetRequest,
};
use hidp::{HidpStrategy, WorkloadModel};
use proptest::prelude::*;

const LEADER: NodeIndex = NodeIndex(1);

fn serving_stream(count: usize, spacing: f64) -> Vec<ServingRequest> {
    let models = [
        WorkloadModel::InceptionV3,
        WorkloadModel::ResNet152,
        WorkloadModel::EfficientNetB0,
    ];
    (0..count)
        .map(|i| {
            ServingRequest::new(models[i % models.len()], i as f64 * spacing)
                .with_sla(SlaClass::ALL[i % SlaClass::ALL.len()])
        })
        .collect()
}

fn fleet_stream(count: usize, seed: u64) -> Vec<FleetRequest> {
    regional_diurnal_stream(
        &[
            WorkloadModel::EfficientNetB0,
            WorkloadModel::InceptionV3,
            WorkloadModel::ResNet152,
        ],
        &[3.0, 1.0],
        2.0,
        10.0,
        20.0,
        count,
        seed,
        &SlaClass::ALL,
    )
}

fn horizon_of(requests: &[FleetRequest]) -> f64 {
    requests
        .iter()
        .map(|r| r.request.arrival)
        .fold(0.0, f64::max)
        .max(1.0)
}

#[test]
fn ewma_tracks_an_injected_straggler_within_bounded_completions() {
    let strategy = HidpStrategy::new();
    let cluster = presets::paper_cluster();
    let straggler = NodeIndex(0);
    let factor = 3.0;
    // A hysteresis band too wide to ever leave: estimation runs on every
    // completion but the loop never re-plans, so the straggler keeps
    // receiving work and its samples keep arriving at the full factor.
    let observe_only = AdaptiveConfig {
        hysteresis: 1e9,
        ..AdaptiveConfig::default()
    };
    let requests = serving_stream(150, 0.05);
    let scenario = ServingScenario::new(requests)
        .with_policy(AdmissionPolicy::EarliestDeadline)
        .with_max_batch(8)
        .with_max_inflight(Some(4))
        .with_slowdowns(vec![SlowdownWindow {
            node: straggler,
            start: 0.0,
            end: 1e9,
            factor,
        }])
        .with_adaptive(observe_only);

    let mut scratch = hidp::core::ServingScratch::new();
    let summary = scenario
        .run_streaming_with_cache_in(
            &strategy,
            &cluster,
            LEADER,
            &hidp::core::PlanCache::new(),
            &mut scratch,
        )
        .unwrap();
    assert_eq!(
        summary.drift.replans, 0,
        "observe-only run must not re-plan"
    );
    assert!(summary.drift.observations > 0);

    let estimates = scratch.drift_estimates();
    assert_eq!(estimates.len(), cluster.len());
    // EWMA at α = 0.2 from 1.0 towards 3.0 closes to within 2% of the
    // injected factor after ~25 samples; the straggler sees far more
    // completions than that over 150 requests.
    let est = estimates[straggler.0].value();
    assert!(
        (est - factor).abs() < 0.02 * factor,
        "straggler estimate {est} has not converged to {factor} \
         ({} samples)",
        estimates[straggler.0].count()
    );
    assert!(
        estimates[straggler.0].count() >= 25,
        "convergence bound needs ≥ 25 straggler samples, saw {}",
        estimates[straggler.0].count()
    );
    // Nodes that do not drift observe ratios of exactly 1.0: their level
    // never moves off 1.0, bit for bit.
    for (n, e) in estimates.iter().enumerate() {
        if n != straggler.0 {
            assert_eq!(e.value(), 1.0, "node {n} estimate drifted with no drift");
        }
    }
}

#[test]
fn no_drift_adaptive_serving_and_fleet_pin_to_legacy() {
    let strategy = HidpStrategy::new();

    // Serving tier: estimation armed, nothing drifting.
    let cluster = presets::paper_cluster();
    let requests = serving_stream(120, 0.05);
    let base = ServingScenario::new(requests)
        .with_policy(AdmissionPolicy::EarliestDeadline)
        .with_max_batch(8)
        .with_max_inflight(Some(4));
    let legacy = base
        .clone()
        .run_streaming(&strategy, &cluster, LEADER)
        .unwrap();
    let adaptive = base
        .with_adaptive(AdaptiveConfig::default())
        .run_streaming(&strategy, &cluster, LEADER)
        .unwrap();
    assert_eq!(adaptive.drift.replans, 0);
    assert!(adaptive.drift.observations > 0);
    let mut pinned = adaptive;
    pinned.drift.observations = legacy.drift.observations;
    assert_eq!(pinned, legacy, "serving no-drift adaptive path diverged");

    // Fleet tier: same pinning.
    let fleet = presets::generated_fleet(3, 2).unwrap();
    let fleet_requests = fleet_stream(90, 11);
    let base = FleetScenario::new(fleet_requests)
        .with_routing(RoutingPolicy::LeastLoaded)
        .with_max_batch(4)
        .with_max_inflight(Some(2));
    let legacy = base.run_streaming(&strategy, &fleet, LEADER).unwrap();
    let adaptive = base
        .clone()
        .with_adaptive(AdaptiveConfig::default())
        .run_streaming(&strategy, &fleet, LEADER)
        .unwrap();
    assert_eq!(adaptive.drift.replans, 0);
    assert!(adaptive.drift.observations > 0);
    let mut pinned = adaptive;
    pinned.drift.observations = legacy.drift.observations;
    assert_eq!(pinned, legacy, "fleet no-drift adaptive path diverged");
}

#[test]
fn replanning_stays_within_the_hysteresis_bound_and_replays_bit_identically() {
    let strategy = HidpStrategy::new();
    let cluster = presets::paper_cluster();
    let requests = serving_stream(400, 0.1);
    let horizon = 400.0 * 0.1;
    let trace = DriftPlanConfig {
        seed: 0xD21F7,
        horizon,
        throttles: 2,
        throttle_peak: 4.0,
        background_windows: 2,
        background_factor: 1.6,
        contention_windows: 1,
        contention_factor: 2.0,
    }
    .generate(cluster.len(), LEADER)
    .unwrap();
    let config = AdaptiveConfig::default();
    let scenario = ServingScenario::new(requests)
        .with_policy(AdmissionPolicy::EarliestDeadline)
        .with_max_batch(8)
        .with_max_inflight(Some(4))
        .with_drift(trace)
        .with_adaptive(config);

    let first = scenario.run_streaming(&strategy, &cluster, LEADER).unwrap();
    assert!(
        first.drift.replans >= 1,
        "the trace must trigger at least one re-plan: {:?}",
        first.drift
    );
    assert!(
        first.drift.replans <= config.max_replans,
        "re-plans {} exceed the hysteresis bound {}",
        first.drift.replans,
        config.max_replans
    );
    assert!(first.robustness.accounts_for_every_request());
    assert_eq!(first.robustness.dropped(), 0, "drift never loses work");

    let second = scenario.run_streaming(&strategy, &cluster, LEADER).unwrap();
    assert_eq!(first, second, "adaptive drift replay must be bit-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn drifting_fleet_runs_are_bit_identical_across_thread_counts(seed in 0u64..1_000_000) {
        let strategy = HidpStrategy::new();
        let fleet = presets::generated_fleet(4, 2).unwrap();
        let requests = fleet_stream(140, seed ^ 0x9E37);
        let node_counts: Vec<usize> = fleet.clusters().iter().map(|c| c.len()).collect();
        let drifts =
            standard_drift_suite(&node_counts, seed, horizon_of(&requests), LEADER).unwrap();
        let scenario = FleetScenario::new(requests)
            .with_routing(RoutingPolicy::LeastLoaded)
            .with_max_batch(4)
            .with_max_inflight(Some(2))
            .with_drifts(drifts)
            .with_adaptive(AdaptiveConfig::default());

        let reference = scenario
            .run_streaming_in(
                &strategy,
                &fleet,
                LEADER,
                &ParallelSweep::new(1),
                &mut FleetScratch::new(),
            )
            .expect("fleet drift run succeeds");
        prop_assert!(reference.robustness.accounts_for_every_request());
        prop_assert!(reference.drift.observations > 0, "estimation must observe completions");
        for threads in [2usize, 4, 8] {
            let summary = scenario
                .run_streaming_in(
                    &strategy,
                    &fleet,
                    LEADER,
                    &ParallelSweep::new(threads),
                    &mut FleetScratch::new(),
                )
                .expect("fleet drift run succeeds");
            prop_assert_eq!(&summary, &reference, "seed {} at {} threads", seed, threads);
        }
    }
}
