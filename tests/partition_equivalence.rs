//! Integration + property tests for the paper's accuracy claim (§IV-B):
//! partitioned execution is numerically equivalent to whole-model execution,
//! for arbitrary partition points, part counts and seeds.

use hidp::dnn::exec::{
    execute, execute_data_partition_batch, execute_data_partition_spatial, execute_model_partition,
    WeightStore,
};
use hidp::dnn::partition::{data_partition, even_fractions, partition_into_blocks};
use hidp::dnn::zoo::small;
use hidp::dnn::{DnnGraph, NodeId};
use hidp::tensor::Tensor;
use proptest::prelude::*;
use rand::SeedableRng;

fn run_whole(graph: &DnnGraph, seed: u64) -> (Tensor, Tensor, WeightStore) {
    let store = WeightStore::generate(graph, seed).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
    let input = Tensor::random(&graph.input_shape().dims(), 1.0, &mut rng).unwrap();
    let output = execute(graph, &input, &store).unwrap();
    (input, output, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any single cut point produces a two-block pipeline whose output
    /// matches whole execution.
    #[test]
    fn any_cut_point_preserves_outputs(cut_idx in 0usize..20, seed in 0u64..1000) {
        let graph = small::tiny_resnet(12, 2, 8);
        let cuts = graph.cut_points();
        let cut = cuts[cut_idx % cuts.len()];
        prop_assume!(cut.0 < graph.len() - 1);
        let (input, whole, store) = run_whole(&graph, seed);
        let partition = partition_into_blocks(&graph, &[cut]).unwrap();
        let piped = execute_model_partition(&graph, &partition, &input, &store).unwrap();
        prop_assert!(piped.approx_eq(&whole, 1e-4).unwrap());
    }

    /// Any batch split count produces identical outputs.
    #[test]
    fn any_batch_split_preserves_outputs(parts in 1usize..=6, seed in 0u64..1000) {
        let graph = small::tiny_cnn(10, 6, 7);
        let (input, whole, store) = run_whole(&graph, seed);
        let merged = execute_data_partition_batch(&graph, parts, &input, &store).unwrap();
        prop_assert!(merged.approx_eq(&whole, 1e-4).unwrap());
        prop_assert_eq!(merged.argmax_rows().unwrap(), whole.argmax_rows().unwrap());
    }

    /// Spatial splitting with a sufficient halo matches whole execution for
    /// stride-1 networks.
    #[test]
    fn spatial_split_with_halo_preserves_outputs(parts in 2usize..=4, seed in 0u64..500) {
        let graph = small::tiny_cnn(20, 1, 5);
        let (input, whole, store) = run_whole(&graph, seed);
        // Three stride-1 3x3 convolutions -> receptive radius 3.
        let merged = execute_data_partition_spatial(&graph, parts, 3, &input, &store).unwrap();
        prop_assert!(merged.approx_eq(&whole, 1e-4).unwrap());
    }

    /// The analytical data-partition descriptor conserves work: per-part
    /// flops sum to at least the whole-model flops and fractions sum to 1.
    #[test]
    fn data_partition_descriptor_conserves_work(parts in 1usize..=8) {
        let graph = small::tiny_mobilenet(16, 1, 9);
        let partition = data_partition(&graph, &even_fractions(parts)).unwrap();
        prop_assert_eq!(partition.len(), parts);
        prop_assert!(partition.total_flops() >= graph.total_flops());
        let fractions: f64 = partition.parts.iter().map(|p| p.fraction).sum();
        prop_assert!((fractions - 1.0).abs() < 1e-9);
    }

    /// Model partitions at any increasing pair of cut points cover every
    /// layer exactly once and preserve total flops and parameters.
    #[test]
    fn block_partitions_tile_the_graph(a in 0usize..30, b in 0usize..30) {
        let graph = small::tiny_inception(16, 1, 12);
        let cuts = graph.cut_points();
        let i = a % cuts.len();
        let j = b % cuts.len();
        prop_assume!(i != j);
        let (first, second) = if cuts[i].0 < cuts[j].0 { (cuts[i], cuts[j]) } else { (cuts[j], cuts[i]) };
        let partition = partition_into_blocks(&graph, &[first, second]).unwrap();
        prop_assert_eq!(partition.len(), 3);
        prop_assert_eq!(partition.total_flops(), graph.total_flops());
        let covered: usize = partition.blocks.iter().map(|b| b.len()).sum();
        prop_assert_eq!(covered, graph.len());
    }
}

#[test]
fn three_block_pipeline_on_every_small_model() {
    for graph in [
        small::tiny_cnn(12, 2, 6),
        small::tiny_resnet(12, 2, 6),
        small::tiny_inception(12, 2, 6),
        small::tiny_mobilenet(12, 2, 6),
    ] {
        let (input, whole, store) = run_whole(&graph, 3);
        let cuts = graph.cut_points();
        let boundaries: Vec<NodeId> = vec![cuts[cuts.len() / 3], cuts[2 * cuts.len() / 3]];
        if boundaries[0] >= boundaries[1] {
            continue;
        }
        let partition = partition_into_blocks(&graph, &boundaries).unwrap();
        let piped = execute_model_partition(&graph, &partition, &input, &store).unwrap();
        assert!(
            piped.approx_eq(&whole, 1e-4).unwrap(),
            "{} diverged under a 3-block pipeline",
            graph.name()
        );
    }
}
