//! Property tests: the event-driven simulator engine must reproduce the
//! original O(n²) list scheduler exactly — bit-identical task records,
//! completion times and energy accounting — on random DAG plans with random
//! resource bindings, dependency structure and arrival times.

use hidp::platform::{presets, Cluster, NodeIndex, ProcessorAddr};
use hidp::sim::{simulate_stream, simulate_stream_reference, ExecutionPlan, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random valid plan: up to `max_tasks` tasks, each either a
/// compute on a random processor or a transfer between random nodes, with a
/// random subset of earlier tasks as dependencies.
fn random_plan(rng: &mut StdRng, cluster: &Cluster, max_tasks: usize) -> ExecutionPlan {
    let processors = cluster.all_processors();
    let nodes = cluster.len();
    let count = rng.gen_range(1..=max_tasks);
    let mut plan = ExecutionPlan::new();
    for i in 0..count {
        // Sparse random DAG: each task picks up to three earlier tasks.
        let mut deps: Vec<TaskId> = Vec::new();
        if i > 0 {
            for _ in 0..rng.gen_range(0..=3usize.min(i)) {
                let dep = TaskId(rng.gen_range(0..i));
                if !deps.contains(&dep) {
                    deps.push(dep);
                }
            }
        }
        if rng.gen_range(0..4) < 3 {
            let target: ProcessorAddr = processors[rng.gen_range(0..processors.len())];
            plan.add_compute(
                format!("c{i}"),
                target,
                rng.gen_range(1_000_000..2_000_000_000u64),
                rng.gen_range(0.0..1.0f64),
                &deps,
            );
        } else {
            plan.add_transfer(
                format!("t{i}"),
                NodeIndex(rng.gen_range(0..nodes)),
                NodeIndex(rng.gen_range(0..nodes)),
                rng.gen_range(1_000..50_000_000u64),
                &deps,
            );
        }
    }
    plan
}

proptest! {
    #[test]
    fn event_engine_matches_list_scheduler_on_random_dags(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = presets::paper_cluster();
        let requests: Vec<(f64, ExecutionPlan)> = (0..rng.gen_range(1..5usize))
            .map(|_| {
                let arrival = rng.gen_range(0.0..2.0f64);
                (arrival, random_plan(&mut rng, &cluster, 40))
            })
            .collect();

        let reference = simulate_stream_reference(&requests, &cluster)
            .expect("reference engine simulates");
        let event = simulate_stream(&requests, &cluster).expect("event engine simulates");

        // Bit-identical, field by field: schedule order, times, accounting.
        prop_assert_eq!(&reference.records, &event.records, "seed {}", seed);
        prop_assert_eq!(
            &reference.request_completion,
            &event.request_completion,
            "seed {}",
            seed
        );
        prop_assert_eq!(&reference.request_arrival, &event.request_arrival);
        prop_assert_eq!(reference.makespan, event.makespan);
        prop_assert_eq!(&reference.meter, &event.meter);
        // And therefore identical energies through the sorted accounting.
        prop_assert_eq!(
            reference.total_energy(&cluster).unwrap(),
            event.total_energy(&cluster).unwrap()
        );
    }

    #[test]
    fn event_engine_matches_list_scheduler_on_degraded_clusters(seed in 0u64..1_000_000) {
        // Same property on a prefix cluster (different resource universe).
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
        let cluster = presets::paper_cluster()
            .take(rng.gen_range(1..=5usize))
            .expect("prefix cluster");
        let requests: Vec<(f64, ExecutionPlan)> = (0..rng.gen_range(1..4usize))
            .map(|_| (rng.gen_range(0.0..1.0f64), random_plan(&mut rng, &cluster, 25)))
            .collect();
        let reference = simulate_stream_reference(&requests, &cluster)
            .expect("reference engine simulates");
        let event = simulate_stream(&requests, &cluster).expect("event engine simulates");
        prop_assert_eq!(&reference.records, &event.records, "seed {}", seed);
        prop_assert_eq!(reference.makespan, event.makespan);
        prop_assert_eq!(&reference.meter, &event.meter);
    }
}
