//! Workspace smoke test: the umbrella crate's re-export surface resolves and
//! the unified `Scenario` pipeline runs for every paper workload.

use hidp::core::{DistributedStrategy, HidpStrategy, Scenario};
use hidp::platform::{presets, NodeIndex};
use hidp::WorkloadModel;

#[test]
fn umbrella_reexports_resolve() {
    // `hidp::core::HidpStrategy` and the convenience re-export are the same
    // type, usable through the trait they implement.
    let strategy: hidp::HidpStrategy = HidpStrategy::new();
    assert_eq!(strategy.name(), "HiDP");

    // The four paper workloads are reachable through the umbrella.
    assert_eq!(hidp::WorkloadModel::ALL.len(), 4);

    // The paper's five-device cluster builds through the platform re-export.
    let cluster = presets::paper_cluster();
    assert_eq!(cluster.len(), 5);
}

#[test]
fn scenario_single_runs_for_every_workload() {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    for model in WorkloadModel::ALL {
        let evaluation = Scenario::single(model.graph(1))
            .run(&strategy, &cluster, NodeIndex(1))
            .unwrap_or_else(|e| panic!("{model} failed: {e}"));
        assert_eq!(evaluation.scenario, model.name());
        assert!(evaluation.latency() > 0.0, "{model}");
        assert!(evaluation.total_energy.is_finite(), "{model}");
    }
}

#[test]
fn scenario_is_reachable_from_workloads_types() {
    // The workloads crate bridges its request types into the pipeline.
    use hidp::workloads::{dynamic_scenario, mixes, InferenceRequest};
    let scenario = InferenceRequest::to_scenario(&dynamic_scenario());
    assert_eq!(scenario.len(), 4);
    let mix = &mixes::all_mixes()[0];
    assert_eq!(mix.scenario(0.5, 6).label(), "Mix-1");
}
