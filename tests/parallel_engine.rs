//! Concurrency contract of the parallel evaluation engine: fanning the same
//! workload mix across worker threads against one shared sharded `PlanCache`
//! must change *nothing* about the results — bit-identical `Evaluation`
//! reports at every thread count — while the cache's aggregate stats stay
//! consistent (hits + misses = lookups) and every distinct key is planned
//! exactly once no matter how many jobs race for it.

use hidp::core::{Evaluation, ParallelSweep, PlanCache, Scenario, SweepJob};
use hidp::platform::{presets, NodeIndex};
use hidp::workloads::mixes;

/// The shared workload: every Fig. 7 mix as a 12-request stream, evaluated
/// with HiDP from two different leaders — 16 jobs whose streams repeatedly
/// revisit the same (model, leader) plan keys, so the shared cache sees
/// heavy cross-job key contention.
fn build_scenarios() -> Vec<(Scenario, NodeIndex)> {
    let mut scenarios = Vec::new();
    for mix in mixes::all_mixes() {
        for leader in [NodeIndex(0), NodeIndex(1)] {
            scenarios.push((mix.scenario(0.1, 12), leader));
        }
    }
    scenarios
}

fn run_at(threads: usize) -> (Vec<Evaluation>, PlanCache) {
    let cluster = presets::paper_cluster();
    let strategy = hidp::HidpStrategy::new();
    let scenarios = build_scenarios();
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .map(|(scenario, leader)| SweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: *leader,
        })
        .collect();
    let cache = PlanCache::new();
    let evaluations = ParallelSweep::new(threads)
        .run_scenarios(&jobs, &cache)
        .into_iter()
        .map(|r| r.expect("mix evaluation succeeds"))
        .collect();
    (evaluations, cache)
}

#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let (serial, serial_cache) = run_at(1);
    // 8 mixes × 2 leaders; 4 distinct models × 2 leaders = 8 distinct keys.
    assert_eq!(serial.len(), 16);
    assert_eq!(serial_cache.len(), 8);

    for threads in [2, 4, 8] {
        let (parallel, cache) = run_at(threads);
        // Bit-identical reports: latencies, makespan, energies, the full
        // per-task simulation report — everything `Evaluation` derives
        // PartialEq over. No tolerance, no sorting.
        assert_eq!(parallel, serial, "{threads} threads diverged from serial");

        // Consistent cache stats. Every request is exactly one lookup...
        let stats = cache.stats();
        let total_requests: u64 = build_scenarios().iter().map(|(s, _)| s.len() as u64).sum();
        assert_eq!(
            stats.lookups(),
            total_requests,
            "hits + misses must equal lookups at {threads} threads"
        );
        // ...and exactly one planner invocation per distinct key, no matter
        // how many threads raced for it (in-flight deduplication).
        assert_eq!(
            stats.misses,
            cache.len() as u64,
            "one plan per distinct key at {threads} threads"
        );
        assert_eq!(cache.len(), serial_cache.len());
    }
}

#[test]
fn shared_cache_across_sweeps_reuses_every_plan() {
    let cluster = presets::paper_cluster();
    let strategy = hidp::HidpStrategy::new();
    let scenarios = build_scenarios();
    let jobs: Vec<SweepJob<'_>> = scenarios
        .iter()
        .map(|(scenario, leader)| SweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: *leader,
        })
        .collect();

    let cache = PlanCache::new();
    let first = ParallelSweep::new(4).run_scenarios(&jobs, &cache);
    let after_first = cache.stats();
    assert_eq!(after_first.misses, cache.len() as u64);

    // A second sweep over the same jobs is all warm-path reads: zero new
    // planner invocations, identical results.
    let second = ParallelSweep::new(4).run_scenarios(&jobs, &cache);
    let after_second = cache.stats();
    assert_eq!(after_second.misses, after_first.misses, "no re-planning");
    assert_eq!(
        after_second.lookups() - after_first.lookups(),
        jobs.iter().map(|j| j.scenario.len() as u64).sum::<u64>()
    );
    let first: Vec<Evaluation> = first.into_iter().map(|r| r.unwrap()).collect();
    let second: Vec<Evaluation> = second.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(first, second);
}
