//! Property tests: the indexed admission queue must reproduce the original
//! `Vec`-scan admission loop exactly — same admission order, same batch
//! membership, same epochs, same simulated metrics, bit for bit — on random
//! serving workloads across every policy, batching level, in-flight window
//! and failure timeline. [`ServingScenario::run`] (indexed) and
//! [`ServingScenario::run_reference`] (the frozen O(n) scan) differ *only*
//! in the queue data structure, so full-result equality pins that structure.

use hidp::core::{AdmissionPolicy, ServingConfig, ServingRequest, ServingScenario, SlaClass};
use hidp::platform::{presets, ClusterTimeline, NodeIndex};
use hidp::{HidpStrategy, WorkloadModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LEADER: NodeIndex = NodeIndex(1);

const MODELS: [WorkloadModel; 3] = [
    WorkloadModel::EfficientNetB0,
    WorkloadModel::InceptionV3,
    WorkloadModel::ResNet152,
];

/// A random serving workload: clustered arrivals (duplicate instants force
/// tie-breaks), mixed models/SLA classes, a random policy, batching limit,
/// in-flight window and an optional down/up flip of a non-leader node.
fn random_scenario(rng: &mut StdRng) -> ServingScenario {
    let count = rng.gen_range(1..40usize);
    let requests: Vec<ServingRequest> = (0..count)
        .map(|_| {
            // Arrivals snap to a coarse grid so many requests share exact
            // instants — the regime where tie-break order matters most.
            let arrival = rng.gen_range(0..12u32) as f64 * 0.05;
            let sla = SlaClass::ALL[rng.gen_range(0..3)];
            ServingRequest::new(MODELS[rng.gen_range(0..MODELS.len())], arrival).with_sla(sla)
        })
        .collect();
    let policy = match rng.gen_range(0..3u8) {
        0 => AdmissionPolicy::Fifo,
        1 => AdmissionPolicy::Priority,
        _ => AdmissionPolicy::EarliestDeadline,
    };
    let max_inflight = match rng.gen_range(0..3u8) {
        0 => None,
        _ => Some(rng.gen_range(0..3usize)),
    };
    let mut timeline = ClusterTimeline::new();
    if rng.gen_range(0..2u8) == 1 {
        // Flip a non-leader node down and back up mid-stream.
        let node = NodeIndex([0usize, 2, 3, 4][rng.gen_range(0..4)]);
        let down = rng.gen_range(0.0..0.4f64);
        timeline = timeline
            .node_down(down, node)
            .unwrap()
            .node_up(down + rng.gen_range(0.05..0.4f64), node)
            .unwrap();
    }
    ServingScenario::new(requests).with_config(ServingConfig {
        policy,
        max_batch: rng.gen_range(1..5usize),
        max_inflight,
        timeline,
        ..ServingConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn indexed_admission_matches_the_reference_scan(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cluster = presets::paper_cluster();
        let strategy = HidpStrategy::new();
        let scenario = random_scenario(&mut rng);

        let indexed = scenario
            .run(&strategy, &cluster, LEADER)
            .expect("indexed serving run succeeds");
        let reference = scenario
            .run_reference(&strategy, &cluster, LEADER)
            .expect("reference serving run succeeds");

        // Bit-identical, field by field: the admission log (order, batch
        // membership, admission times, epochs), per-request records, SLA
        // aggregates and the downstream simulation.
        prop_assert_eq!(&indexed.admissions, &reference.admissions, "seed {}", seed);
        prop_assert_eq!(&indexed.records, &reference.records, "seed {}", seed);
        prop_assert_eq!(indexed.epochs_applied, reference.epochs_applied);
        prop_assert_eq!(&indexed.serving, &reference.serving);
        prop_assert_eq!(&indexed.evaluation, &reference.evaluation);
    }
}
