//! Equivalence suite for the serving runtime.
//!
//! The contract the `ServingScenario` refactor rests on: the old static
//! pipeline is a *degenerate* serving configuration (FIFO admission,
//! batch = 1, unbounded in-flight window, empty failure timeline), and in
//! that configuration every metric — latencies, makespan, energies, the
//! whole `SimReport`, even the plan-cache hit/miss attribution — is
//! **bit-identical** to `Scenario::run` on the same stream. On top of that,
//! `TraceDetail::Summary` must change nothing about the serving aggregates
//! (latency/energy/SLA), and the sweep runner must be thread-count
//! invariant.

use hidp::core::{
    AdmissionPolicy, ParallelSweep, PlanCache, ServingScenario, ServingScratch, ServingSweepJob,
    SlaClass, TraceDetail,
};
use hidp::platform::{presets, ClusterTimeline, NodeIndex};
use hidp::workloads::{bursty_stream, mixes, poisson_stream_classed, InferenceRequest};
use hidp::{HidpStrategy, WorkloadModel};

const LEADER: NodeIndex = NodeIndex(1);

/// The Mix-5 stream the acceptance criterion names: EfficientNet-B0,
/// Inception-V3 and ResNet-152 cycling at a 0.15 s inter-arrival.
fn mix5_requests(count: usize) -> Vec<hidp::workloads::InferenceRequest> {
    let mix5 = mixes::all_mixes()
        .into_iter()
        .find(|m| m.id == 5)
        .expect("Mix-5 exists");
    mix5.requests(0.15, count)
}

#[test]
fn degenerate_serving_is_bit_identical_to_scenario_run_on_mix5() {
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = mix5_requests(60);

    let static_eval = InferenceRequest::to_scenario(&requests)
        .with_label("mix5")
        .run(&strategy, &cluster, LEADER)
        .expect("static evaluation succeeds");
    let served = InferenceRequest::to_serving_scenario(&requests)
        .with_label("mix5")
        .run(&strategy, &cluster, LEADER)
        .expect("serving evaluation succeeds");

    // The embedded Evaluation matches the static pipeline field for field —
    // exact equality, no tolerance: latencies, makespan, both energy sums,
    // the full report (records, completions, arrivals, meter) and the
    // plan-cache attribution (3 misses, 57 hits on the cyclic mix).
    assert_eq!(served.evaluation, static_eval);

    // Degenerate admission: one batch per request, admitted at arrival,
    // epoch 0 throughout, zero queueing everywhere.
    assert_eq!(served.admissions.len(), requests.len());
    assert_eq!(served.epochs_applied, 0);
    for (i, (batch, request)) in served.admissions.iter().zip(&requests).enumerate() {
        assert_eq!(batch.members, vec![i]);
        assert_eq!(batch.admitted, request.arrival);
        assert_eq!(batch.epoch, 0);
    }
    assert_eq!(served.serving.max_queueing_delay, 0.0);
    assert_eq!(served.serving.mean_queueing_delay, 0.0);
    assert_eq!(served.serving.requests, requests.len());
}

#[test]
fn degenerate_serving_matches_scenario_for_every_baseline_strategy() {
    // The equivalence is a property of the pipeline, not of HiDP: every
    // paper strategy must agree between the two paths.
    let cluster = presets::paper_cluster();
    let requests = mix5_requests(12);
    for strategy in hidp::baselines::paper_strategies() {
        let static_eval = InferenceRequest::to_scenario(&requests)
            .with_label("mix5")
            .run(strategy.as_ref(), &cluster, LEADER)
            .expect("static evaluation succeeds");
        let served = InferenceRequest::to_serving_scenario(&requests)
            .with_label("mix5")
            .run(strategy.as_ref(), &cluster, LEADER)
            .expect("serving evaluation succeeds");
        assert_eq!(served.evaluation, static_eval, "{}", strategy.name());
    }
}

#[test]
fn summary_and_full_traces_agree_on_all_serving_aggregates() {
    // Satellite: Summary and Full must report identical latency/energy/SLA
    // aggregates on the same served stream — including under batching, a
    // bounded window and a failure timeline, where the serving loop does
    // real work.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = InferenceRequest::to_serving(&bursty_stream(
        &[WorkloadModel::InceptionV3, WorkloadModel::EfficientNetB0],
        4,
        0.3,
        32,
        &SlaClass::ALL,
    ));
    let timeline = ClusterTimeline::new()
        .node_down(0.5, NodeIndex(3))
        .unwrap()
        .node_up(2.5, NodeIndex(3))
        .unwrap();
    let scenario = ServingScenario::new(requests)
        .with_policy(AdmissionPolicy::Priority)
        .with_max_batch(4)
        .with_max_inflight(Some(2))
        .with_timeline(timeline);

    let full = scenario
        .clone()
        .with_trace_detail(TraceDetail::Full)
        .run(&strategy, &cluster, LEADER)
        .expect("full-trace run succeeds");
    let summary = scenario
        .with_trace_detail(TraceDetail::Summary)
        .run(&strategy, &cluster, LEADER)
        .expect("summary run succeeds");

    // The only difference is the materialised per-task trace.
    assert!(!full.evaluation.report.records.is_empty());
    assert!(summary.evaluation.report.records.is_empty());
    assert_eq!(full.evaluation.latencies, summary.evaluation.latencies);
    assert_eq!(full.evaluation.makespan, summary.evaluation.makespan);
    assert_eq!(
        full.evaluation.total_energy,
        summary.evaluation.total_energy
    );
    assert_eq!(
        full.evaluation.dynamic_energy,
        summary.evaluation.dynamic_energy
    );
    assert_eq!(full.evaluation.plan_cache, summary.evaluation.plan_cache);
    assert_eq!(
        full.evaluation.report.meter,
        summary.evaluation.report.meter
    );
    assert_eq!(full.serving, summary.serving);
    assert_eq!(full.records, summary.records);
    assert_eq!(full.admissions, summary.admissions);
    assert_eq!(full.epochs_applied, summary.epochs_applied);
}

#[test]
fn serving_sweep_is_thread_count_invariant() {
    // The same grid of serving jobs through ParallelSweep::run_serving at
    // 1/2/4 threads must produce bit-identical results (CI additionally
    // enforces this on every PR via `exp_serving --quick`).
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = InferenceRequest::to_serving(&poisson_stream_classed(
        &WorkloadModel::ALL,
        3.0,
        24,
        11,
        &SlaClass::ALL,
    ));
    let scenarios: Vec<ServingScenario> = [
        AdmissionPolicy::Fifo,
        AdmissionPolicy::Priority,
        AdmissionPolicy::EarliestDeadline,
    ]
    .into_iter()
    .flat_map(|policy| {
        let requests = requests.clone();
        [1usize, 4].into_iter().map(move |max_batch| {
            ServingScenario::new(requests.clone())
                .with_label(format!("{}/k{max_batch}", policy.name()))
                .with_policy(policy)
                .with_max_batch(max_batch)
                .with_max_inflight(Some(2))
        })
    })
    .collect();
    let jobs: Vec<ServingSweepJob<'_>> = scenarios
        .iter()
        .map(|scenario| ServingSweepJob {
            scenario,
            strategy: &strategy,
            cluster: &cluster,
            leader: LEADER,
        })
        .collect();

    let reference: Vec<_> = {
        let cache = PlanCache::new();
        ParallelSweep::new(1)
            .run_serving(&jobs, &cache)
            .into_iter()
            .map(|r| r.expect("serving job succeeds"))
            .collect()
    };
    for threads in [2usize, 4] {
        let cache = PlanCache::new();
        let results: Vec<_> = ParallelSweep::new(threads)
            .run_serving(&jobs, &cache)
            .into_iter()
            .map(|r| r.expect("serving job succeeds"))
            .collect();
        assert_eq!(results, reference, "threads = {threads}");
    }
}

#[test]
fn scratch_and_shared_cache_entry_points_are_bit_identical() {
    // run / run_with_cache / run_with_cache_in must agree (modulo cache
    // stats, which depend on cache warmth).
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    let requests = InferenceRequest::to_serving(&mix5_requests(15));
    let scenario = ServingScenario::new(requests)
        .with_max_batch(3)
        .with_max_inflight(Some(1));

    let direct = scenario.run(&strategy, &cluster, LEADER).unwrap();
    let cache = PlanCache::new();
    let mut scratch = ServingScratch::new();
    let cold = scenario
        .run_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
        .unwrap();
    let warm = scenario
        .run_with_cache_in(&strategy, &cluster, LEADER, &cache, &mut scratch)
        .unwrap();

    assert_eq!(direct.evaluation.plan_cache, cold.evaluation.plan_cache);
    for other in [&cold, &warm] {
        assert_eq!(direct.evaluation.latencies, other.evaluation.latencies);
        assert_eq!(direct.evaluation.makespan, other.evaluation.makespan);
        assert_eq!(direct.evaluation.report, other.evaluation.report);
        assert_eq!(direct.serving, other.serving);
        assert_eq!(direct.records, other.records);
        assert_eq!(direct.admissions, other.admissions);
    }
    // Warm run re-planned nothing.
    let stats = warm.evaluation.plan_cache.unwrap();
    assert_eq!(stats.misses, 0);
    assert!(stats.hits > 0);
}

#[test]
fn failure_timeline_changes_plans_only_after_the_flip() {
    // Before the failure the serving loop must produce the same plans the
    // static path does; after it, plans must avoid the failed node.
    let cluster = presets::paper_cluster();
    let strategy = HidpStrategy::new();
    // Two widely spaced requests so one falls on each side of the failure.
    let requests = vec![
        hidp::core::ServingRequest::new(WorkloadModel::InceptionV3, 0.0),
        hidp::core::ServingRequest::new(WorkloadModel::InceptionV3, 5.0),
    ];
    let timeline = ClusterTimeline::new().node_down(2.0, NodeIndex(0)).unwrap();
    let served = ServingScenario::new(requests)
        .with_timeline(timeline)
        .run(&strategy, &cluster, LEADER)
        .expect("serving run succeeds");
    assert_eq!(served.epochs_applied, 1);
    assert_eq!(served.evaluation.plan_cache.unwrap().misses, 2);
    // The post-failure batch ran in epoch 1 and its tasks avoid node 0.
    assert_eq!(served.admissions[1].epoch, 1);
    let records = &served.evaluation.report.records;
    assert!(!records.is_empty());
    for record in records.iter().filter(|r| r.request == 1) {
        if let Some(addr) = record.processor {
            assert_ne!(
                addr.node,
                NodeIndex(0),
                "task `{}` used a failed node",
                record.name
            );
        }
    }
}
