//! # hidp
//!
//! Umbrella crate for the HiDP reproduction (*HiDP: Hierarchical DNN
//! Partitioning for Distributed Inference on Heterogeneous Edge Platforms*,
//! DATE 2025). It re-exports the workspace crates so applications can depend
//! on a single crate:
//!
//! * [`tensor`] — NCHW tensor kernels and split/merge primitives;
//! * [`dnn`] — DNN graphs, cost model, model zoo, partitioning, execution;
//! * [`platform`] — processors, edge nodes, clusters, network, energy;
//! * [`sim`] — the discrete-event cluster simulator;
//! * [`core`] — the HiDP framework (system model, DP search, DSE agent,
//!   partitioners, scheduler FSM, cluster runtime, strategy);
//! * [`baselines`] — MoDNN, OmniBoost, DisNet and GPU-only;
//! * [`workloads`] — request streams and the paper's workload mixes.
//!
//! ```
//! use hidp::core::{HidpStrategy, Scenario};
//! use hidp::dnn::zoo::WorkloadModel;
//! use hidp::platform::{presets, NodeIndex};
//!
//! # fn main() -> Result<(), hidp::core::CoreError> {
//! let cluster = presets::paper_cluster();
//! let result = Scenario::single(WorkloadModel::ResNet152.graph(1))
//!     .run(&HidpStrategy::new(), &cluster, NodeIndex(1))?;
//! println!("HiDP latency: {:.1} ms", result.latency() * 1e3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use hidp_baselines as baselines;
pub use hidp_core as core;
pub use hidp_dnn as dnn;
pub use hidp_platform as platform;
pub use hidp_sim as sim;
pub use hidp_tensor as tensor;
pub use hidp_workloads as workloads;

/// The four DNN workloads evaluated in the paper, re-exported for
/// convenience.
pub use hidp_dnn::zoo::WorkloadModel;

/// The HiDP strategy, re-exported for convenience.
pub use hidp_core::HidpStrategy;

/// The unified plan→simulate evaluation pipeline, re-exported for
/// convenience.
pub use hidp_core::{Evaluation, Scenario};

/// The online serving runtime (admission, dynamic batching, SLA classes,
/// failure timelines), re-exported for convenience.
pub use hidp_core::{AdmissionPolicy, ServingConfig, ServingEvaluation, ServingScenario, SlaClass};

/// The fleet serving tier (multi-cluster routing on one clock),
/// re-exported for convenience.
pub use hidp_core::{FleetRequest, FleetScenario, FleetSummary, RoutingPolicy};
