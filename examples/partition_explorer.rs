//! Partition explorer: inspect what the DSE agent sees for a given model —
//! the chain segments, the global Ψ vector, both DP search results, the
//! chosen mode — and verify on a small network that partitioned execution
//! reproduces whole-model outputs exactly.
//!
//! ```sh
//! cargo run --example partition_explorer [model]
//! ```

use hidp::core::{chain_segments, workload_summary, DseAgent, SystemModel};
use hidp::dnn::exec::{
    execute, execute_data_partition_batch, execute_model_partition, WeightStore,
};
use hidp::dnn::partition::partition_into_blocks;
use hidp::dnn::zoo::{self, WorkloadModel};
use hidp::platform::{presets, NodeIndex};
use hidp::tensor::Tensor;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model: WorkloadModel = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "efficientnet_b0".to_string())
        .parse()?;
    let graph = model.graph(1);
    let cluster = presets::paper_cluster();
    let leader = NodeIndex(1);

    println!(
        "{}: {} layers, {} cut points, {:.2} GFLOP, GPU affinity {:.2}",
        graph.name(),
        graph.len(),
        graph.cut_points().len(),
        graph.total_flops() as f64 / 1e9,
        graph.gpu_affinity()
    );

    let system = SystemModel::new(&graph, leader);
    let resources = system.global_resources(&cluster);
    println!("\nglobal resource vector Ψ (rate, comm rate, ratio):");
    for resource in &resources {
        println!(
            "  {:<18} {:>8.1} GFLOP/s  {:>8.1} MB/s  ψ = {:.3}",
            resource.name,
            resource.rate / 1e9,
            resource.comm_rate / 1e6,
            resource.ratio()
        );
    }

    let segments = chain_segments(&graph);
    let workload = workload_summary(&graph);
    let decision = DseAgent::new().explore(&segments, &resources, workload, resources.len())?;
    println!(
        "\nDSE decision: {} partitioning, estimated {:.1} ms (rejected mode: {:.1} ms)",
        decision.mode,
        decision.latency * 1e3,
        decision.rejected_latency().unwrap_or(f64::NAN) * 1e3
    );
    if let Some(model_search) = &decision.model {
        println!("  model search: {} block(s)", model_search.block_count());
    }
    if let Some(data_search) = &decision.data {
        println!("  data search : σ = {}", data_search.parallelism());
    }

    // Equivalence demonstration on a small network (the real models are too
    // large for the reference kernels).
    let tiny = zoo::small::tiny_inception(14, 2, 10);
    let store = WeightStore::generate(&tiny, 1)?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let input = Tensor::random(&tiny.input_shape().dims(), 1.0, &mut rng)?;
    let whole = execute(&tiny, &input, &store)?;
    let cut = tiny.cut_points()[tiny.cut_points().len() / 2];
    let blocks = partition_into_blocks(&tiny, &[cut])?;
    let piped = execute_model_partition(&tiny, &blocks, &input, &store)?;
    let batched = execute_data_partition_batch(&tiny, 2, &input, &store)?;
    println!(
        "\nequivalence on {}: |whole - pipelined| = {:.2e}, |whole - data-split| = {:.2e}",
        tiny.name(),
        whole.max_abs_diff(&piped)?,
        whole.max_abs_diff(&batched)?
    );
    println!(
        "Top-1 predictions identical: {}",
        whole.argmax_rows()? == piped.argmax_rows()?
            && whole.argmax_rows()? == batched.argmax_rows()?
    );
    Ok(())
}
