//! Edge-cluster inference: run the full leader/follower protocol
//! (Algorithm 1 + the Fig. 4 state machines) through the in-process cluster
//! runtime, then compare HiDP against every baseline on the same request.
//!
//! ```sh
//! cargo run --example edge_cluster_inference [model]
//! ```
//!
//! `model` is one of `efficientnet_b0`, `inception_v3`, `resnet152`,
//! `vgg19` (default: `inception_v3`).

use hidp::baselines::all_strategies;
use hidp::core::runtime::ClusterRuntime;
use hidp::core::{HidpStrategy, Scenario};
use hidp::dnn::zoo::WorkloadModel;
use hidp::platform::{presets, NodeIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model: WorkloadModel = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "inception_v3".to_string())
        .parse()?;
    let graph = model.graph(1);
    let cluster = presets::paper_cluster();
    let leader = NodeIndex(1);

    // 1. Run the collaborative protocol: status polling, global DSE,
    //    offloading, per-follower local DSE, result collection.
    let runtime = ClusterRuntime::new(cluster.clone(), HidpStrategy::new());
    let outcome = runtime.run_request(&graph, leader)?;
    println!("leader FSM trace: {:?}", outcome.leader_trace);
    println!(
        "availability vector: {:?}",
        outcome
            .availability
            .iter()
            .map(|a| u8::from(*a))
            .collect::<Vec<_>>()
    );
    println!(
        "global decision: {} partitioning over {} node(s)",
        outcome.plan.global.mode,
        outcome.plan.global.shares.len()
    );
    for (node, local) in &outcome.follower_reports {
        println!(
            "  follower {} mapped its share onto {} processor(s) ({} locally)",
            cluster.nodes()[node.0].name,
            local.parallelism(),
            local.mode
        );
    }

    // 2. Compare against the baselines on the simulated cluster.
    println!("\n{model} on the five-device cluster (request at the TX2):");
    println!(
        "{:<18} {:>12} {:>12}",
        "strategy", "latency[ms]", "energy[J]"
    );
    let scenario = Scenario::single(graph);
    for strategy in all_strategies() {
        let result = scenario.run(strategy.as_ref(), &cluster, leader)?;
        println!(
            "{:<18} {:>12.1} {:>12.2}",
            result.strategy,
            result.latency() * 1e3,
            result.total_energy
        );
    }
    Ok(())
}
