//! Quickstart: plan and simulate one distributed inference with HiDP.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's five-device edge cluster, submits a ResNet-152 request
//! at the Jetson TX2, and prints the hierarchical decision (global mode and
//! per-node shares, then per-node processor splits) along with the simulated
//! latency and energy.

use hidp::core::{DistributedStrategy, HidpStrategy, Scenario, ShareKind};
use hidp::dnn::zoo::WorkloadModel;
use hidp::platform::{presets, NodeIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::paper_cluster();
    let leader = NodeIndex(1); // the Jetson TX2 receives the request
    let model = WorkloadModel::ResNet152;
    let graph = model.graph(1);
    println!(
        "workload: {} ({:.1} GFLOP, {:.1} M parameters)",
        graph.name(),
        graph.total_flops() as f64 / 1e9,
        graph.total_parameters() as f64 / 1e6
    );

    let hidp = HidpStrategy::new();
    let plan = hidp.hierarchical_plan(&graph, &cluster, leader)?;
    println!(
        "\nglobal decision: {} partitioning, {} share(s), estimated {:.1} ms",
        plan.global.mode,
        plan.global.shares.len(),
        plan.global.estimated_latency * 1e3
    );
    for (share, local) in plan.global.shares.iter().zip(plan.locals.iter()) {
        let node = &cluster.nodes()[share.node.0];
        let what = match share.kind {
            ShareKind::Block { first, last } => format!("layers {first}..={last}"),
            ShareKind::DataPart { fraction } => format!("{:.0}% of the input", fraction * 100.0),
        };
        println!(
            "  {:<16} {:<22} {:>6.2} GFLOP on {} processor(s) [{} locally]",
            node.name,
            what,
            share.flops as f64 / 1e9,
            local.parallelism(),
            local.mode
        );
    }

    let result = Scenario::single(graph).run(&hidp, &cluster, leader)?;
    println!(
        "\nsimulated: latency {:.1} ms, energy {:.2} J ({:.2} J dynamic)",
        result.latency() * 1e3,
        result.total_energy,
        result.dynamic_energy
    );
    println!("strategy: {}", hidp.name());
    Ok(())
}
