//! Workload-mix throughput: reproduce the Fig. 6 / Fig. 7 style streaming
//! experiments — the dynamic scenario (one model every 0.5 s) and the eight
//! workload mixes — and print throughput per strategy.
//!
//! ```sh
//! cargo run --example workload_mix_throughput
//! ```

use hidp::baselines::paper_strategies;
use hidp::platform::{presets, NodeIndex};
use hidp::sim::stats::performance_timeline;
use hidp::workloads::{dynamic_scenario, mixes, InferenceRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = presets::paper_cluster();
    let leader = NodeIndex(1);
    let strategies = paper_strategies();

    // Dynamic scenario (Fig. 6): four models arriving 0.5 s apart.
    println!("dynamic scenario (EfficientNet → Inception → ResNet → VGG, 0.5 s apart):");
    let dynamic = InferenceRequest::to_scenario(&dynamic_scenario()).with_label("dynamic");
    for strategy in &strategies {
        let eval = dynamic.run(strategy.as_ref(), &cluster, leader)?;
        let peak = performance_timeline(&eval.report, 0.5)
            .iter()
            .map(|b| b.gflops_per_second)
            .fold(0.0f64, f64::max);
        println!(
            "  {:<12} completes in {:>5.2} s, peak {:>6.1} GFLOP/s, energy {:>6.1} J",
            eval.strategy, eval.makespan, peak, eval.total_energy
        );
    }

    // Workload mixes (Fig. 7): throughput per 100 s.
    println!("\nthroughput over the eight workload mixes [inferences / 100 s]:");
    print!("{:<8}", "mix");
    for strategy in &strategies {
        print!("{:>12}", strategy.name());
    }
    println!();
    for mix in mixes::all_mixes() {
        let scenario = mix.scenario(0.5, 12);
        print!("{:<8}", mix.name());
        for strategy in &strategies {
            let eval = scenario.run(strategy.as_ref(), &cluster, leader)?;
            print!("{:>12.0}", eval.throughput(100.0));
        }
        println!();
    }
    Ok(())
}
