//! Offline stand-in for `crossbeam`, implementing the API subset the
//! workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError}` with cloneable (mpmc) receivers.
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. The channel here is a `Mutex<VecDeque>` + `Condvar` — adequate
//! for the low-rate leader/follower control messages it carries, not a
//! lock-free queue.

/// Multi-producer multi-consumer channels (stand-in for
/// `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<QueueState<T>>,
        ready: Condvar,
    }

    struct QueueState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// (The stand-in never reports disconnected receivers — the shared queue
    /// lives as long as any endpoint — so `send` only fails if the queue
    /// mutex is poisoned.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has been dropped and the queue is empty.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel; cloneable (mpmc).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let Ok(mut state) = self.shared.queue.lock() {
                state.senders -= 1;
                if state.senders == 0 {
                    self.shared.ready.notify_all();
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// Returns the value back when the channel mutex is poisoned.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.shared.queue.lock() {
                Ok(mut state) => {
                    state.items.push_back(value);
                    self.shared.ready.notify_one();
                    Ok(())
                }
                Err(_) => Err(SendError(value)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, waiting up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrives in time,
        /// [`RecvTimeoutError::Disconnected`] when the queue is empty and no
        /// sender remains.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self
                .shared
                .queue
                .lock()
                .map_err(|_| RecvTimeoutError::Disconnected)?;
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .map_err(|_| RecvTimeoutError::Disconnected)?;
                state = next;
                if result.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(41));
        }

        #[test]
        fn timeout_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn disconnected_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || tx.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(7));
            handle.join().unwrap();
        }
    }
}
