//! Offline stand-in for `crossbeam`, implementing the API subset the
//! workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError}` with cloneable (mpmc) receivers, and
//! `crossbeam::thread::scope` scoped threads (borrowing spawns that are
//! guaranteed joined before `scope` returns).
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. The channel here is a `Mutex<VecDeque>` + `Condvar` — adequate
//! for the low-rate leader/follower control messages it carries, not a
//! lock-free queue. The scoped threads delegate to `std::thread::scope`;
//! the one behavioural divergence from the real crate is documented on
//! [`thread::scope`].

/// Multi-producer multi-consumer channels (stand-in for
/// `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<QueueState<T>>,
        ready: Condvar,
    }

    struct QueueState<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    ///
    /// (The stand-in never reports disconnected receivers — the shared queue
    /// lives as long as any endpoint — so `send` only fails if the queue
    /// mutex is poisoned.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender has been dropped and the queue is empty.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel; cloneable (mpmc).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let Ok(mut state) = self.shared.queue.lock() {
                state.senders -= 1;
                if state.senders == 0 {
                    self.shared.ready.notify_all();
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one waiting receiver.
        ///
        /// # Errors
        ///
        /// Returns the value back when the channel mutex is poisoned.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.shared.queue.lock() {
                Ok(mut state) => {
                    state.items.push_back(value);
                    self.shared.ready.notify_one();
                    Ok(())
                }
                Err(_) => Err(SendError(value)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, waiting up to `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrives in time,
        /// [`RecvTimeoutError::Disconnected`] when the queue is empty and no
        /// sender remains.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self
                .shared
                .queue
                .lock()
                .map_err(|_| RecvTimeoutError::Disconnected)?;
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .map_err(|_| RecvTimeoutError::Disconnected)?;
                state = next;
                if result.timed_out() && state.items.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(41).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(41));
        }

        #[test]
        fn timeout_on_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn disconnected_when_senders_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || tx.send(7).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(7));
            handle.join().unwrap();
        }
    }
}

/// Scoped threads (stand-in for `crossbeam::thread`), backed by
/// `std::thread::scope`.
pub mod thread {
    /// A scope in which borrowing threads can be spawned; all of them are
    /// joined before [`scope`] returns.
    ///
    /// Mirrors `crossbeam::thread::Scope`: spawned closures receive a
    /// `&Scope` so they can spawn further threads onto the same scope.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`Scope`].
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result
        /// (`Err` carries the panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure may borrow from the
        /// enclosing environment (`'env`) and receives the scope itself so it
        /// can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads and joins all of them
    /// before returning.
    ///
    /// Divergence from the real crate: `crossbeam` catches panics of
    /// *unjoined* spawned threads and reports them in the returned
    /// `Result`; `std::thread::scope` resumes such panics on the calling
    /// thread instead, so this stand-in only ever returns `Ok` (or panics).
    /// Callers that `join()` every handle — as this workspace does — observe
    /// identical behaviour either way.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (see above); the `Result` exists for signature
    /// compatibility with the real crate.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum::<u64>()
            })
            .expect("scope completes");
            assert_eq!(total, 20);
        }

        #[test]
        fn nested_spawns_share_the_scope() {
            let result = super::scope(|s| {
                s.spawn(|inner| inner.spawn(|_| 21).join().expect("inner joins") * 2)
                    .join()
                    .expect("outer joins")
            })
            .expect("scope completes");
            assert_eq!(result, 42);
        }
    }
}
