//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `serde_derive` cannot be vendored. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as a marker — nothing serialises
//! through serde at run time — so the derives expand to nothing and the
//! `serde` stand-in crate satisfies the trait bounds with blanket impls.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
