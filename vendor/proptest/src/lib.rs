//! Offline stand-in for `proptest`, covering the subset the workspace's
//! property tests use: the [`proptest!`] macro with `name in range`
//! strategies over integer ranges, `prop_assume!`, `prop_assert!` and
//! `prop_assert_eq!`.
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. Each property runs a fixed number of cases with inputs drawn
//! from a deterministically seeded generator — no shrinking, but failures
//! print the sampled inputs via the assertion message and reproduce exactly
//! on re-run.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cases each property runs (the real crate defaults to 256; this
/// stand-in trades coverage for suite run time like the seed's
/// `ProptestConfig::with_cases(24)` did).
pub const DEFAULT_CASES: usize = 24;

/// Configuration marker accepted (and ignored) by [`proptest!`]'s
/// `#![proptest_config]` attribute.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig;

impl ProptestConfig {
    /// Accepted for API compatibility; the stand-in always runs
    /// [`DEFAULT_CASES`] cases.
    pub fn with_cases(_cases: u32) -> Self {
        Self
    }
}

/// Deterministic input sampler used by the generated test bodies.
#[derive(Debug)]
pub struct Sampler {
    rng: StdRng,
}

impl Sampler {
    /// Creates a sampler with a fixed seed so failures reproduce.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            rng: StdRng::seed_from_u64(0x_5EED_CA5E),
        }
    }

    /// Draws one value from an integer or float range strategy.
    pub fn sample<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.rng.gen_range(range)
    }
}

/// Declares property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    (
        // `#[test]` is matched by the generic attribute repetition and
        // re-emitted with it.
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $range:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut sampler = $crate::Sampler::new();
            for _ in 0..$crate::DEFAULT_CASES {
                $(let $arg = sampler.sample($range);)*
                // prop_assume! returns from this closure to skip the case.
                let case = || $body;
                case();
            }
        }
        $crate::proptest! { $($rest)* }
    };
    () => {};
}

/// Skips the current case when `cond` is false (stand-in for
/// `proptest::prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Asserts within a property (stand-in for `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality within a property (stand-in for
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The usual glob import surface (stand-in for `proptest::prelude`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Sampler};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Ranges and assume/assert plumbing all work.
        #[test]
        fn sampled_values_stay_in_range(x in 0usize..10, y in 1u64..=4) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert!((1..=4).contains(&y));
            prop_assert_eq!(x + 1, 1 + x);
        }
    }

    #[test]
    fn sampler_is_deterministic() {
        let mut a = Sampler::new();
        let mut b = Sampler::new();
        for _ in 0..50 {
            let x: u64 = a.sample(0u64..1000);
            let y: u64 = b.sample(0u64..1000);
            assert_eq!(x, y);
        }
    }
}
