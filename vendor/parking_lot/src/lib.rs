//! Offline stand-in for `parking_lot`, providing the non-poisoning
//! [`Mutex`] and [`RwLock`] API subset the workspace uses (`lock()` /
//! `read()` / `write()` returning the guard directly).
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. This wraps the `std::sync` primitives and recovers from
//! poisoning the way `parking_lot` behaves (poisoning does not exist there).
//! The fairness and footprint properties of the real crate are not
//! reproduced — only the API contract the callers rely on.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            // parking_lot has no poisoning: keep going with the data as-is.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read()` / `write()` return guards directly.
///
/// Readers proceed in parallel; a writer excludes everyone. Backed by
/// `std::sync::RwLock` (whose contended-acquisition order is left to the
/// OS, as is `parking_lot`'s default).
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read lock, blocking until no writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }

    #[test]
    fn rwlock_read_and_write_return_guards_directly() {
        let l = RwLock::new(7);
        {
            // Shared readers coexist.
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn rwlock_is_shareable_across_threads() {
        let l = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = std::sync::Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
