//! Offline stand-in for `parking_lot`, providing the non-poisoning
//! [`Mutex`] API the workspace uses (`lock()` returning the guard directly).
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. This wraps `std::sync::Mutex` and recovers from poisoning the
//! way `parking_lot` behaves (poisoning does not exist there).

use std::sync::MutexGuard;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            // parking_lot has no poisoning: keep going with the data as-is.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert_eq!(m.into_inner(), 4);
    }
}
