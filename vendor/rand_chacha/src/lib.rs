//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`] on top of the
//! stand-in `rand` traits.
//!
//! The block function is a genuine ChaCha8 implementation (RFC 8439 state
//! layout, 8 rounds); only the seed expansion differs from the real crate
//! (`seed_from_u64` expands through SplitMix64 like `rand` 0.8 does, but the
//! resulting streams are not bit-compatible with the real `rand_chacha`).
//! Workspace call sites rely on determinism, not on matching upstream
//! streams.

use rand::{RngCore, SeedableRng};

/// Re-export of the stand-in core traits under the path the real crate
/// exposes (`rand_chacha::rand_core`).
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A deterministic ChaCha generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce words 4..16 of the ChaCha state.
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block` (16 ⇒ refill).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key via SplitMix64, as rand
        // 0.8's default seed_from_u64 does.
        let mut s = seed;
        let mut splitmix = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = splitmix();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        Self {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn blocks_advance() {
        // More than one 16-word block must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
