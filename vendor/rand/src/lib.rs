//! Offline stand-in for the `rand` crate, implementing the 0.8-API subset
//! this workspace uses: [`Rng::gen_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`thread_rng`] and
//! [`distributions::Uniform`].
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. Determinism is what the workspace actually relies on (seeded
//! weight generation, Poisson streams, equivalence tests); statistical
//! quality only needs to be good enough for uniform draws, which the
//! SplitMix64 generator provides. The streams do **not** bit-match the real
//! `rand` crate — all call sites only compare streams produced by this
//! implementation against itself.

/// A source of random 64-bit words; the supertrait of [`Rng`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The SplitMix64 step used by [`rngs::StdRng`] and to expand seeds.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: a seeded SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up mix so nearby seeds diverge immediately.
            let mut state = seed;
            let _ = splitmix64(&mut state);
            Self { state }
        }
    }

    /// Stand-in for `rand::rngs::ThreadRng` (not cryptographic; seeded from
    /// the wall clock).
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        state: u64,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5EED);
            let mut state = nanos;
            let _ = splitmix64(&mut state);
            Self { state }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

/// Returns a fresh non-deterministic generator (stand-in for
/// `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Uniform distributions (stand-in for `rand::distributions`).
pub mod distributions {
    use super::Rng;

    /// A distribution that can produce values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed or half-open interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: uniform::SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Self {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            Self {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_between(rng, self.low, self.high, self.inclusive)
        }
    }

    /// Uniform-sampling support traits (stand-in for
    /// `rand::distributions::uniform`).
    pub mod uniform {
        use crate::RngCore;

        /// Types that can be drawn uniformly from an interval.
        pub trait SampleUniform: Sized + Copy {
            /// Draws uniformly from `[low, high)` (or `[low, high]` when
            /// `inclusive`).
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self;
        }

        macro_rules! impl_sample_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        rng: &mut R,
                        low: Self,
                        high: Self,
                        inclusive: bool,
                    ) -> Self {
                        let lo = low as i128;
                        let hi = high as i128;
                        let span = (hi - lo) + if inclusive { 1 } else { 0 };
                        assert!(span > 0, "gen_range: empty range");
                        // Modulo bias is ≤ span/2^64, irrelevant here.
                        (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
                    }
                }
            )*};
        }

        impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    low < high || (inclusive && low <= high),
                    "gen_range: empty range"
                );
                // 53 random mantissa bits → u in [0, 1).
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                low + u * (high - low)
            }
        }

        impl SampleUniform for f32 {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                f64::sample_between(rng, low as f64, high as f64, inclusive) as f32
            }
        }

        /// Ranges usable with [`crate::Rng::gen_range`].
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(rng, *self.start(), *self.end(), true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pair(), b.next_u64_pair());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64_pair(), c.next_u64_pair());
    }

    trait Pair {
        fn next_u64_pair(&mut self) -> (u64, u64);
    }
    impl Pair for StdRng {
        fn next_u64_pair(&mut self) -> (u64, u64) {
            use super::RngCore;
            (self.next_u64(), self.next_u64())
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..5);
            assert!(x < 5);
            let f: f64 = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_inclusive_stays_in_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let dist = Uniform::new_inclusive(-0.5f32, 0.5f32);
        for _ in 0..1000 {
            let x = dist.sample(&mut rng);
            assert!((-0.5..=0.5).contains(&x));
        }
    }
}
