//! Offline stand-in for `criterion`, implementing the API subset the
//! workspace benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build container has no crates.io access, so the real crate cannot be
//! fetched. Measurement is a plain wall-clock mean over `sample_size`
//! batches (no outlier analysis, no HTML report) — enough to compare hot
//! paths between commits, printed one line per benchmark.
//!
//! Like the real crate, the harness honours two command-line inputs (as in
//! `cargo bench -- [FILTER] [--test]`): a positional substring filter that
//! selects which benchmarks run, and `--test`, which runs each selected
//! benchmark exactly once without timing — the smoke mode CI uses to keep
//! the perf path compiling and executing on every PR.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How the harness should execute benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Timed samples (the default).
    Measure,
    /// One untimed pass per benchmark (`--test`), for smoke testing.
    Test,
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            mode: Mode::Measure,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line configuration: `--test` switches to one untimed
    /// pass per benchmark, and the first non-flag argument becomes a
    /// substring filter on benchmark names. Other flags cargo forwards
    /// (e.g. `--bench`) are accepted and ignored.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                self.mode = Mode::Test;
            } else if !arg.starts_with('-') && self.filter.is_none() {
                self.filter = Some(arg);
            }
        }
        self
    }

    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.mode, self.filter.as_deref(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.criterion.mode,
            self.criterion.filter.as_deref(),
            f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            self.criterion.mode,
            self.criterion.filter.as_deref(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self(name)
    }
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, running it `iterations` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    mode: Mode,
    filter: Option<&str>,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !name.contains(filter) {
            return;
        }
    }
    if mode == Mode::Test {
        let mut bencher = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "test bench {name}: ok ({})",
            format_duration(bencher.elapsed)
        );
        return;
    }
    // Warm-up pass, also used to pick an iteration count that keeps each
    // sample around a millisecond without running forever.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let warmup = bencher.elapsed.max(Duration::from_nanos(1));
    let iterations =
        (Duration::from_millis(1).as_nanos() / warmup.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        best = best.min(bencher.elapsed / iterations as u32);
    }
    let mean = total / (sample_size as u32 * iterations as u32);
    println!(
        "bench {name}: mean {} / iter, best {} ({} samples × {} iters)",
        format_duration(mean),
        format_duration(best),
        sample_size,
        iterations
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Defines a function that runs the listed benchmark targets (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut criterion = Criterion::default();
        criterion.sample_size(2);
        let mut runs = 0u64;
        criterion.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_compose_ids() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).0, "f/4");
        assert_eq!(BenchmarkId::from_parameter("HiDP").0, "HiDP");
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut runs = 0u64;
        run_benchmark("once", 30, Mode::Test, None, |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut runs = 0u64;
        run_benchmark("alpha/x", 2, Mode::Test, Some("beta"), |b| {
            b.iter(|| runs += 1)
        });
        assert_eq!(runs, 0);
        run_benchmark("beta/x", 2, Mode::Test, Some("beta"), |b| {
            b.iter(|| runs += 1)
        });
        assert_eq!(runs, 1);
    }
}
