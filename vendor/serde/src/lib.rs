//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the real `serde` cannot be
//! fetched. The workspace uses `Serialize`/`Deserialize` purely as derive
//! markers on result types (nothing serialises through serde at run time —
//! JSON output is hand-rolled in `hidp-bench`), so this crate provides the
//! two trait names with blanket impls and re-exports the no-op derives.
//!
//! If real serialisation is ever needed, replace this stand-in with the real
//! crate by restoring a registry source for `serde` in the root manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`; blanket-implemented for
/// every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`; blanket-implemented
/// for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
